//! Per-tenant quotas and the admission book.
//!
//! Admission control is the server's first line of fairness: a tenant
//! can never occupy more than its configured share of the queue, the
//! worker pool's cycle budget, or the service's lifetime shot budget.
//! The book is plain deterministic bookkeeping over [`BTreeMap`]s —
//! admission decisions depend only on the sequence of submissions, never
//! on timing.

use crate::error::ServeError;
use quest_core::TenantId;
use quest_runtime::{WorkloadOp, WorkloadSpec};
use std::collections::BTreeMap;

/// Resource ceilings for one tenant. The default is unlimited; servers
/// configure a real quota per tenant (or a default for all tenants) at
/// construction or via `Server::set_quota`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantQuota {
    /// Jobs the tenant may have waiting in the queue at once (running
    /// jobs do not count).
    pub max_queued_jobs: u64,
    /// Shard-cycles (worker-thread × QECC-cycle products, summed over
    /// the tenant's queued and running jobs) the tenant may hold in
    /// flight at once. This is the knob that keeps one tenant's giant
    /// workloads from monopolizing the pool.
    pub max_inflight_shard_cycles: u64,
    /// Logical readouts ("shots") the tenant may admit over the server's
    /// lifetime. Unlike the other two, this budget never replenishes.
    pub max_total_shots: u64,
}

impl Default for TenantQuota {
    fn default() -> TenantQuota {
        TenantQuota::UNLIMITED
    }
}

impl TenantQuota {
    /// No limits at all.
    pub const UNLIMITED: TenantQuota = TenantQuota {
        max_queued_jobs: u64::MAX,
        max_inflight_shard_cycles: u64::MAX,
        max_total_shots: u64::MAX,
    };
}

/// What one job costs against its tenant's quota.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobCost {
    /// `shards × total QECC cycles`: the job's parallel cycle footprint.
    pub shard_cycles: u64,
    /// Logical readouts the job performs.
    pub shots: u64,
}

impl JobCost {
    /// Prices a workload. Pure arithmetic over the spec.
    pub fn of(spec: &WorkloadSpec) -> JobCost {
        let shots = spec
            .ops
            .iter()
            .filter(|op| matches!(op, WorkloadOp::MeasureZ { .. }))
            .count() as u64;
        JobCost {
            shard_cycles: (spec.shards as u64).saturating_mul(spec.total_cycles()),
            shots,
        }
    }
}

/// One tenant's live reservations.
#[derive(Debug, Clone, Copy, Default)]
struct TenantUsage {
    /// Jobs admitted but not yet picked up by a worker.
    queued_jobs: u64,
    /// Shard-cycles reserved by queued + running jobs.
    inflight_shard_cycles: u64,
    /// Lifetime shots admitted (never released).
    admitted_shots: u64,
}

/// The admission book: quotas and live usage for every tenant.
#[derive(Debug, Default)]
pub(crate) struct QuotaBook {
    default_quota: TenantQuota,
    quotas: BTreeMap<TenantId, TenantQuota>,
    usage: BTreeMap<TenantId, TenantUsage>,
}

impl QuotaBook {
    pub(crate) fn new(default_quota: TenantQuota) -> QuotaBook {
        QuotaBook {
            default_quota,
            ..QuotaBook::default()
        }
    }

    /// The quota governing `tenant`.
    pub(crate) fn quota(&self, tenant: TenantId) -> TenantQuota {
        self.quotas
            .get(&tenant)
            .copied()
            .unwrap_or(self.default_quota)
    }

    /// Installs a per-tenant override of the default quota. Applies to
    /// future admissions; live reservations are untouched.
    pub(crate) fn set_quota(&mut self, tenant: TenantId, quota: TenantQuota) {
        self.quotas.insert(tenant, quota);
    }

    /// Admits a job, reserving its cost, or rejects it with the first
    /// violated limit (checked in order: queued jobs, shard-cycles,
    /// shots). Rejection reserves nothing.
    pub(crate) fn admit(&mut self, tenant: TenantId, cost: JobCost) -> Result<(), ServeError> {
        let quota = self.quota(tenant);
        let usage = self.usage.entry(tenant).or_default();
        if usage.queued_jobs >= quota.max_queued_jobs {
            return Err(ServeError::QuotaQueuedJobs {
                tenant,
                limit: quota.max_queued_jobs,
            });
        }
        if usage
            .inflight_shard_cycles
            .saturating_add(cost.shard_cycles)
            > quota.max_inflight_shard_cycles
        {
            return Err(ServeError::QuotaShardCycles {
                tenant,
                limit: quota.max_inflight_shard_cycles,
                in_flight: usage.inflight_shard_cycles,
                requested: cost.shard_cycles,
            });
        }
        if usage.admitted_shots.saturating_add(cost.shots) > quota.max_total_shots {
            return Err(ServeError::QuotaShots {
                tenant,
                limit: quota.max_total_shots,
                used: usage.admitted_shots,
                requested: cost.shots,
            });
        }
        usage.queued_jobs = usage.queued_jobs.saturating_add(1);
        usage.inflight_shard_cycles = usage
            .inflight_shard_cycles
            .saturating_add(cost.shard_cycles);
        usage.admitted_shots = usage.admitted_shots.saturating_add(cost.shots);
        Ok(())
    }

    /// Rolls an admission back as if it never happened (the job could
    /// not be enqueued). Unlike [`QuotaBook::finish`], this also refunds
    /// the lifetime shot budget.
    pub(crate) fn rollback(&mut self, tenant: TenantId, cost: JobCost) {
        if let Some(usage) = self.usage.get_mut(&tenant) {
            usage.queued_jobs = usage.queued_jobs.saturating_sub(1);
            usage.inflight_shard_cycles = usage
                .inflight_shard_cycles
                .saturating_sub(cost.shard_cycles);
            usage.admitted_shots = usage.admitted_shots.saturating_sub(cost.shots);
        }
    }

    /// A worker picked the job up: it no longer occupies a queue slot
    /// (its shard-cycles stay reserved until [`QuotaBook::finish`]).
    pub(crate) fn start(&mut self, tenant: TenantId) {
        if let Some(usage) = self.usage.get_mut(&tenant) {
            usage.queued_jobs = usage.queued_jobs.saturating_sub(1);
        }
    }

    /// The job reached a terminal state: its shard-cycle reservation is
    /// released. Shots are a lifetime budget and stay spent.
    pub(crate) fn finish(&mut self, tenant: TenantId, cost: JobCost) {
        if let Some(usage) = self.usage.get_mut(&tenant) {
            usage.inflight_shard_cycles = usage
                .inflight_shard_cycles
                .saturating_sub(cost.shard_cycles);
        }
    }

    /// A supervised job is heading back into the queue for a retry: it
    /// re-occupies a queue slot. No limits are checked — the job was
    /// admitted once and its shard-cycle/shot reservations never lapsed;
    /// refusing the retry here would leak them.
    pub(crate) fn requeue(&mut self, tenant: TenantId) {
        let usage = self.usage.entry(tenant).or_default();
        usage.queued_jobs = usage.queued_jobs.saturating_add(1);
    }

    /// Live reservations summed over every tenant: `(queued jobs,
    /// in-flight shard-cycles)`. Both must read zero once every admitted
    /// job has reached a terminal state — the conservation law the chaos
    /// harness asserts.
    pub(crate) fn outstanding(&self) -> (u64, u64) {
        self.usage.values().fold((0, 0), |(jobs, cycles), u| {
            (jobs + u.queued_jobs, cycles + u.inflight_shard_cycles)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost(shard_cycles: u64, shots: u64) -> JobCost {
        JobCost {
            shard_cycles,
            shots,
        }
    }

    #[test]
    fn job_cost_prices_the_spec() {
        let spec = WorkloadSpec::memory(3, 4, 2, 0.0, 1, 25);
        let c = JobCost::of(&spec);
        assert_eq!(c.shard_cycles, 2 * 25);
        assert_eq!(c.shots, 4, "one MeasureZ per tile");
    }

    #[test]
    fn queued_job_quota_counts_only_queued_jobs() {
        let mut book = QuotaBook::new(TenantQuota {
            max_queued_jobs: 1,
            ..TenantQuota::UNLIMITED
        });
        let t = TenantId(0);
        book.admit(t, cost(10, 1)).unwrap();
        assert!(matches!(
            book.admit(t, cost(10, 1)),
            Err(ServeError::QuotaQueuedJobs { limit: 1, .. })
        ));
        // Once a worker picks the first job up, a queue slot frees.
        book.start(t);
        book.admit(t, cost(10, 1)).unwrap();
        // Other tenants are unaffected throughout.
        book.admit(TenantId(1), cost(10, 1)).unwrap();
    }

    #[test]
    fn shard_cycle_quota_releases_on_finish() {
        let mut book = QuotaBook::new(TenantQuota {
            max_inflight_shard_cycles: 100,
            ..TenantQuota::UNLIMITED
        });
        let t = TenantId(3);
        book.admit(t, cost(80, 0)).unwrap();
        let err = book.admit(t, cost(30, 0)).unwrap_err();
        assert!(
            matches!(
                err,
                ServeError::QuotaShardCycles {
                    in_flight: 80,
                    requested: 30,
                    limit: 100,
                    ..
                }
            ),
            "{err:?}"
        );
        book.start(t);
        book.finish(t, cost(80, 0));
        book.admit(t, cost(30, 0)).unwrap();
    }

    #[test]
    fn shot_quota_is_a_lifetime_budget() {
        let mut book = QuotaBook::new(TenantQuota {
            max_total_shots: 10,
            ..TenantQuota::UNLIMITED
        });
        let t = TenantId(9);
        book.admit(t, cost(1, 6)).unwrap();
        book.start(t);
        book.finish(t, cost(1, 6));
        // The job finished, but its shots stay spent.
        let err = book.admit(t, cost(1, 6)).unwrap_err();
        assert!(
            matches!(err, ServeError::QuotaShots { used: 6, .. }),
            "{err:?}"
        );
        book.admit(t, cost(1, 4)).unwrap();
    }

    #[test]
    fn rollback_refunds_everything() {
        let mut book = QuotaBook::new(TenantQuota {
            max_queued_jobs: 1,
            max_inflight_shard_cycles: 10,
            max_total_shots: 5,
        });
        let t = TenantId(2);
        book.admit(t, cost(10, 5)).unwrap();
        book.rollback(t, cost(10, 5));
        book.admit(t, cost(10, 5)).unwrap();
    }

    #[test]
    fn requeue_and_outstanding_balance_over_a_retry() {
        let mut book = QuotaBook::new(TenantQuota::UNLIMITED);
        let t = TenantId(4);
        book.admit(t, cost(40, 2)).unwrap();
        assert_eq!(book.outstanding(), (1, 40));
        book.start(t);
        assert_eq!(book.outstanding(), (0, 40));
        // Attempt fails; the retry re-occupies a queue slot without
        // touching the cycle reservation.
        book.requeue(t);
        assert_eq!(book.outstanding(), (1, 40));
        book.start(t);
        book.finish(t, cost(40, 2));
        assert_eq!(book.outstanding(), (0, 0), "conservation after retry");
    }

    #[test]
    fn per_tenant_overrides_take_effect() {
        let mut book = QuotaBook::new(TenantQuota::UNLIMITED);
        let t = TenantId(7);
        book.set_quota(
            t,
            TenantQuota {
                max_queued_jobs: 0,
                ..TenantQuota::UNLIMITED
            },
        );
        assert!(book.admit(t, cost(1, 1)).is_err());
        assert!(book.admit(TenantId(8), cost(1, 1)).is_ok());
        assert_eq!(book.quota(t).max_queued_jobs, 0);
    }
}
