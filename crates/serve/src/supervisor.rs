//! Retry supervision policy: which failures are worth retrying, how
//! often, and with what deterministic backoff.
//!
//! The serving layer treats a [`RuntimeError`] the way the paper's
//! hardware treats a fault: infrastructure failures (a crashed shard
//! worker, a dead decode pool, an exhausted link) are *environmental* —
//! the job's physics is fine, the machinery under it hiccuped — so the
//! supervisor retries them, resuming from the job's latest
//! [`RunSnapshot`](quest_runtime::RunSnapshot) when one exists. Logical
//! failures (a spec that cannot build, a protocol violation) would fail
//! identically forever and are terminal on the first occurrence.
//!
//! Determinism is preserved through the retry: before the next attempt
//! the supervisor strips **only the fault class that caused the
//! failure** from the job's plan (see [`disarm`]). Pre-failure cycles
//! are unaffected by an armed-but-unfired fault, so resuming the
//! disarmed snapshot is bit-identical to a clean run of the disarmed
//! spec — the invariant `checkpoint_resume.rs` pins on the runtime side
//! and the chaos harness re-asserts end to end. A `Link` failure is
//! retryable but *not* disarmed: the exhausted-retransmission budget is
//! part of the modelled channel, so a deterministic link failure re-fails
//! identically, exhausts its attempts, and lands in `Failed` — exactly
//! what a real control stack would report.
//!
//! Backoff is measured in queue pops (the server's logical clock), never
//! wall time, so a chaos seed replays the identical retry schedule.

use quest_runtime::{RunSnapshot, RuntimeError, WorkloadSpec};

/// Per-job supervision knobs, attached at submission via
/// [`Server::submit_with_policy`](crate::Server::submit_with_policy).
///
/// The default policy is unsupervised: one attempt, no checkpointing, no
/// deadline — byte-for-byte the pre-supervision serving behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts the job may consume (≥ 1; the first run counts).
    pub max_attempts: u32,
    /// Backoff between attempts, in queue pops: attempt `n`'s retry
    /// parks for `(n - 1) × backoff_slots` pops before becoming ready.
    pub backoff_slots: u64,
    /// Checkpoint cadence in QECC cycles (0 = forced-only). Retries
    /// resume from the latest checkpoint; with no checkpoint the next
    /// attempt restarts from the spec.
    pub checkpoint_every: u64,
    /// Cycle budget: the job is terminated with
    /// [`JobOutcome::DeadlineExceeded`](crate::JobOutcome) once its
    /// executed QECC-cycle count reaches this bound. Checked at cycle
    /// checkpoints; absolute across resumed attempts (a resumed run
    /// continues the cycle clock, a from-scratch retry restarts it).
    pub deadline_cycles: Option<u64>,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            backoff_slots: 1,
            checkpoint_every: 0,
            deadline_cycles: None,
        }
    }
}

impl RetryPolicy {
    /// Sets the total attempt budget (clamped ≥ 1).
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Sets the per-retry backoff in queue pops.
    pub fn with_backoff_slots(mut self, slots: u64) -> RetryPolicy {
        self.backoff_slots = slots;
        self
    }

    /// Sets the checkpoint cadence in QECC cycles (0 = forced-only).
    pub fn with_checkpoint_every(mut self, cycles: u64) -> RetryPolicy {
        self.checkpoint_every = cycles;
        self
    }

    /// Sets the QECC-cycle deadline.
    pub fn with_deadline_cycles(mut self, cycles: u64) -> RetryPolicy {
        self.deadline_cycles = Some(cycles);
        self
    }
}

/// Whether a runtime failure is environmental (worth retrying) rather
/// than logical (would fail identically forever).
pub fn retryable(error: &RuntimeError) -> bool {
    matches!(
        error,
        RuntimeError::ShardFailed { .. }
            | RuntimeError::DecodePoolFailed { .. }
            | RuntimeError::Link(_)
    )
}

/// Strips exactly the fault class that caused `error` from the job's
/// spec (and its carried snapshot, when resuming): the machinery that
/// failed has been "replaced", everything else in the plan stays armed.
/// Link failures strip nothing — see the module docs. Public so external
/// supervisors (the CLI's local retry loop) apply the same invariant the
/// server does.
pub fn disarm(error: &RuntimeError, spec: &mut WorkloadSpec, snapshot: Option<&mut RunSnapshot>) {
    match error {
        RuntimeError::ShardFailed { .. } => {
            spec.faults.shard_panic = None;
            if let Some(snap) = snapshot {
                snap.disarm_shard_panic();
            }
        }
        RuntimeError::DecodePoolFailed { .. } => {
            spec.faults.kill_decode_worker_after_jobs = None;
            if let Some(snap) = snapshot {
                snap.disarm_decode_kill();
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_core::LinkFailure;

    #[test]
    fn classification_splits_environmental_from_logical() {
        assert!(retryable(&RuntimeError::ShardFailed {
            shard: 1,
            detail: "drill".into(),
        }));
        assert!(retryable(&RuntimeError::DecodePoolFailed {
            detail: "all workers dead".into(),
        }));
        assert!(retryable(&RuntimeError::Link(LinkFailure {
            tile: 0,
            attempts: 9,
        })));
        assert!(!retryable(&RuntimeError::Cancelled { cycles_done: 3 }));
        assert!(!retryable(&RuntimeError::ReferenceFaults));
        assert!(!retryable(&RuntimeError::Protocol {
            context: "cycle barrier",
            payload: String::new(),
        }));
    }

    #[test]
    fn default_policy_is_unsupervised() {
        let p = RetryPolicy::default();
        assert_eq!(p.max_attempts, 1);
        assert_eq!(p.checkpoint_every, 0);
        assert_eq!(p.deadline_cycles, None);
    }

    #[test]
    fn builders_clamp_and_compose() {
        let p = RetryPolicy::default()
            .with_max_attempts(0)
            .with_backoff_slots(3)
            .with_checkpoint_every(2)
            .with_deadline_cycles(50);
        assert_eq!(p.max_attempts, 1, "attempt budget clamps to ≥ 1");
        assert_eq!(p.backoff_slots, 3);
        assert_eq!(p.checkpoint_every, 2);
        assert_eq!(p.deadline_cycles, Some(50));
    }

    #[test]
    fn disarm_strips_only_the_causing_class() {
        use quest_runtime::{FaultPlan, ShardPanicPlan, WorkloadSpec};
        let mut spec = WorkloadSpec::memory(3, 2, 2, 1e-3, 7, 10);
        spec.faults = FaultPlan {
            drop_rate: 0.1,
            kill_decode_worker_after_jobs: Some(2),
            shard_panic: Some(ShardPanicPlan {
                shard: 0,
                after_cycles: 3,
            }),
            ..FaultPlan::none()
        };
        let shard_err = RuntimeError::ShardFailed {
            shard: 0,
            detail: "drill".into(),
        };
        disarm(&shard_err, &mut spec, None);
        assert_eq!(spec.faults.shard_panic, None);
        assert_eq!(
            spec.faults.kill_decode_worker_after_jobs,
            Some(2),
            "other fault classes stay armed"
        );
        let pool_err = RuntimeError::DecodePoolFailed {
            detail: "dead".into(),
        };
        disarm(&pool_err, &mut spec, None);
        assert_eq!(spec.faults.kill_decode_worker_after_jobs, None);
        assert!(spec.faults.drop_rate > 0.0, "link noise is never stripped");
    }
}
