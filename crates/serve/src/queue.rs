//! The bounded multi-producer / multi-consumer job queue.
//!
//! Shaped like a bounded MPMC ring: producers (client threads inside
//! [`Server::submit`](crate::Server::submit)) never block — a full queue
//! is an admission failure, not a stall — and consumers (the fixed
//! worker pool) block until work arrives or the queue closes. Built on
//! `Mutex<VecDeque> + Condvar` because the workspace forbids `unsafe`
//! outright; the *interface* is the lock-free ring's (bounded, non-
//! blocking push, closable), so a lock-free core could be swapped in
//! behind it without touching callers.
//!
//! Poisoned locks are recovered with [`PoisonError::into_inner`]: the
//! queue state is a plain deque whose invariants hold between every
//! operation, so a panicking peer (contained elsewhere by the runtime's
//! supervision) never wedges the queue.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Why a push was refused. Carries the item back so the caller can roll
/// its admission back without cloning.
#[derive(Debug)]
pub(crate) enum PushRefused<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// One end of the shared queue (clone freely; all clones are the same
/// queue).
#[derive(Debug)]
pub(crate) struct JobQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for JobQueue<T> {
    fn clone(&self) -> JobQueue<T> {
        JobQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[derive(Debug)]
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A bounded queue holding at most `capacity` items (clamped ≥ 1).
    pub(crate) fn bounded(capacity: usize) -> JobQueue<T> {
        JobQueue {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner {
                    items: VecDeque::new(),
                    closed: false,
                }),
                ready: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// The queue's bound.
    pub(crate) fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Items currently waiting.
    pub(crate) fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// Non-blocking push: refuses instead of waiting when the queue is
    /// full or closed.
    pub(crate) fn push(&self, item: T) -> Result<(), PushRefused<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushRefused::Closed(item));
        }
        if inner.items.len() >= self.shared.capacity {
            return Err(PushRefused::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Blocking pop: waits until an item arrives or the queue is closed
    /// *and* drained. `None` means "no more work, ever" — the consumer's
    /// signal to exit.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .shared
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start refusing, pops drain what remains
    /// and then return `None`. Idempotent.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.shared.ready.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_in_fifo_order() {
        let q = JobQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = JobQueue::bounded(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushRefused::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::bounded(4);
        q.push(7).unwrap();
        q.close();
        match q.push(8) {
            Err(PushRefused::Closed(item)) => assert_eq!(item, 8),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(7), "queued work survives the close");
        assert_eq!(q.pop(), None, "then the queue ends");
        assert_eq!(q.pop(), None, "and stays ended");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q: JobQueue<u32> = JobQueue::bounded(1);
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q: JobQueue<u64> = JobQueue::bounded(8);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let v = p * 100 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(PushRefused::Full(_)) => std::thread::yield_now(),
                                Err(PushRefused::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..25u64).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected, "every item delivered exactly once");
    }
}
