//! The bounded multi-producer / multi-consumer job queue.
//!
//! Shaped like a bounded MPMC ring: producers (client threads inside
//! [`Server::submit`](crate::Server::submit)) either block for a slot
//! (`push_wait`) or get a typed refusal back (`push`), and consumers
//! (the fixed worker pool) block until work arrives or the queue closes.
//! Built on `Mutex<VecDeque> + Condvar` because the workspace forbids
//! `unsafe` outright; the *interface* is the lock-free ring's (bounded,
//! closable), so a lock-free core could be swapped in behind it without
//! touching callers.
//!
//! The retry supervisor re-enqueues failed jobs through `push_delayed`,
//! whose backoff is measured in **queue pops** — the queue's own logical
//! clock — never in wall time (QL02: no timing feeds scheduling that
//! could reach a report). A delayed item parks until the pop counter
//! reaches its ready mark; an otherwise-idle queue promotes the earliest
//! parked item instead of stalling the pool.
//!
//! Poisoned locks are recovered with [`PoisonError::into_inner`]: the
//! queue state is a plain deque whose invariants hold between every
//! operation, so a panicking peer (contained elsewhere by the runtime's
//! supervision) never wedges the queue.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// Why a push was refused. Carries the item back so the caller can roll
/// its admission back without cloning.
#[derive(Debug)]
pub(crate) enum PushRefused<T> {
    /// The queue is at capacity.
    Full(T),
    /// The queue has been closed.
    Closed(T),
}

#[derive(Debug)]
struct Inner<T> {
    items: VecDeque<T>,
    /// Retried items waiting out their backoff: `(ready_at_pops, seq,
    /// item)`, promoted into `items` once the pop counter reaches
    /// `ready_at_pops` (ties broken by parking order).
    parked: Vec<(u64, u64, T)>,
    /// Total successful pops — the backoff clock.
    pops: u64,
    /// Monotone parking sequence for deterministic tie-breaks.
    seq: u64,
    closed: bool,
}

impl<T> Inner<T> {
    /// Moves every parked item whose ready mark has passed into the main
    /// deque, earliest mark first.
    fn promote_ready(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        self.parked.sort_by_key(|&(ready, seq, _)| (ready, seq));
        while self
            .parked
            .first()
            .is_some_and(|&(ready, _, _)| ready <= self.pops)
        {
            let (_, _, item) = self.parked.remove(0);
            self.items.push_back(item);
        }
    }

    /// Idle escape: with nothing else to run, promote the earliest
    /// parked item rather than leaving a worker blocked behind a backoff
    /// clock that only pops can advance.
    fn promote_earliest(&mut self) {
        if self.parked.is_empty() {
            return;
        }
        self.parked.sort_by_key(|&(ready, seq, _)| (ready, seq));
        let (_, _, item) = self.parked.remove(0);
        self.items.push_back(item);
    }
}

/// One end of the shared queue (clone freely; all clones are the same
/// queue).
#[derive(Debug)]
pub(crate) struct JobQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for JobQueue<T> {
    fn clone(&self) -> JobQueue<T> {
        JobQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

#[derive(Debug)]
struct Shared<T> {
    inner: Mutex<Inner<T>>,
    /// Signalled when an item arrives (or the queue closes): wakes
    /// blocked consumers.
    ready: Condvar,
    /// Signalled when a slot frees (or the queue closes): wakes blocked
    /// `push_wait` producers.
    space: Condvar,
    capacity: usize,
}

impl<T> JobQueue<T> {
    /// A bounded queue holding at most `capacity` items (clamped ≥ 1).
    pub(crate) fn bounded(capacity: usize) -> JobQueue<T> {
        JobQueue {
            shared: Arc::new(Shared {
                inner: Mutex::new(Inner {
                    items: VecDeque::new(),
                    parked: Vec::new(),
                    pops: 0,
                    seq: 0,
                    closed: false,
                }),
                ready: Condvar::new(),
                space: Condvar::new(),
                capacity: capacity.max(1),
            }),
        }
    }

    /// The queue's bound.
    pub(crate) fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Items currently waiting (parked retries included).
    pub(crate) fn len(&self) -> usize {
        let inner = self.lock();
        inner.items.len() + inner.parked.len()
    }

    /// Non-blocking push: refuses instead of waiting when the queue is
    /// full or closed.
    pub(crate) fn push(&self, item: T) -> Result<(), PushRefused<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushRefused::Closed(item));
        }
        if inner.items.len() >= self.shared.capacity {
            return Err(PushRefused::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.shared.ready.notify_one();
        Ok(())
    }

    /// Blocking push: waits for a slot instead of refusing a full queue.
    /// Still refuses (with the item back) once the queue is closed.
    pub(crate) fn push_wait(&self, item: T) -> Result<(), PushRefused<T>> {
        let mut inner = self.lock();
        loop {
            if inner.closed {
                return Err(PushRefused::Closed(item));
            }
            if inner.items.len() < self.shared.capacity {
                inner.items.push_back(item);
                drop(inner);
                self.shared.ready.notify_one();
                return Ok(());
            }
            inner = self
                .shared
                .space
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Infallible re-enqueue for an already-admitted item (a retrying
    /// job): parks it for `delay_pops` queue pops of backoff, ignoring
    /// both the capacity bound and the closed flag — an admitted job
    /// must reach a terminal state even mid-drain, and its queue slot is
    /// already accounted for by admission control.
    pub(crate) fn push_delayed(&self, item: T, delay_pops: u64) {
        let mut inner = self.lock();
        if delay_pops == 0 {
            inner.items.push_back(item);
        } else {
            let ready_at = inner.pops.saturating_add(delay_pops);
            let seq = inner.seq;
            inner.seq = inner.seq.saturating_add(1);
            inner.parked.push((ready_at, seq, item));
        }
        drop(inner);
        // Wake a consumer either way: if every worker is blocked, the
        // idle-escape in `pop` promotes the parked item immediately.
        self.shared.ready.notify_one();
    }

    /// Blocking pop: waits until an item arrives or the queue is closed
    /// *and* drained (parked retries included). `None` means "no more
    /// work, ever" — the consumer's signal to exit.
    pub(crate) fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            inner.promote_ready();
            if inner.items.is_empty() {
                inner.promote_earliest();
            }
            if let Some(item) = inner.items.pop_front() {
                inner.pops = inner.pops.saturating_add(1);
                drop(inner);
                self.shared.space.notify_one();
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .shared
                .ready
                .wait(inner)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Closes the queue: pushes start refusing, pops drain what remains
    /// and then return `None`. Idempotent.
    pub(crate) fn close(&self) {
        self.lock().closed = true;
        self.shared.ready.notify_all();
        self.shared.space.notify_all();
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        self.shared
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_in_fifo_order() {
        let q = JobQueue::bounded(4);
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = JobQueue::bounded(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(PushRefused::Full(item)) => assert_eq!(item, 3),
            other => panic!("expected Full, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(1));
        q.push(3).unwrap();
    }

    #[test]
    fn close_drains_then_ends() {
        let q = JobQueue::bounded(4);
        q.push(7).unwrap();
        q.close();
        match q.push(8) {
            Err(PushRefused::Closed(item)) => assert_eq!(item, 8),
            other => panic!("expected Closed, got {other:?}"),
        }
        assert_eq!(q.pop(), Some(7), "queued work survives the close");
        assert_eq!(q.pop(), None, "then the queue ends");
        assert_eq!(q.pop(), None, "and stays ended");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q: JobQueue<u32> = JobQueue::bounded(1);
        let consumer = {
            let q = q.clone();
            std::thread::spawn(move || q.pop())
        };
        // Give the consumer a moment to block, then close.
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn delayed_items_wait_out_their_pops_behind_live_traffic() {
        let q = JobQueue::bounded(8);
        q.push(1).unwrap();
        q.push(2).unwrap();
        q.push(3).unwrap();
        // Parked for 2 pops: once the ready mark passes it rejoins at
        // the back of the live deque (FIFO among ready work).
        q.push_delayed(99, 2);
        assert_eq!(q.len(), 4, "parked items count toward the length");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        assert_eq!(q.pop(), Some(99), "promoted after its 2-pop backoff");
    }

    #[test]
    fn idle_queue_promotes_parked_items_instead_of_stalling() {
        let q = JobQueue::bounded(4);
        q.push_delayed(7, 1000);
        // Nothing else will ever pop, so the idle escape must hand the
        // parked item over rather than block the consumer forever.
        assert_eq!(q.pop(), Some(7));
    }

    #[test]
    fn push_delayed_ignores_capacity_and_close() {
        let q = JobQueue::bounded(1);
        q.push(1).unwrap();
        q.close();
        q.push_delayed(2, 0); // over capacity AND closed: still lands
        q.push_delayed(3, 5);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3), "parked items drain through a close");
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn push_wait_blocks_until_a_slot_frees() {
        let q = JobQueue::bounded(1);
        q.push(1).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push_wait(2).is_ok())
        };
        // Give the producer a moment to block, then free the slot.
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(q.pop(), Some(1));
        assert!(producer.join().unwrap());
        assert_eq!(q.pop(), Some(2));
    }

    #[test]
    fn push_wait_refuses_once_closed() {
        let q = JobQueue::bounded(1);
        q.push(1).unwrap();
        let producer = {
            let q = q.clone();
            std::thread::spawn(move || q.push_wait(2))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        match producer.join().unwrap() {
            Err(PushRefused::Closed(item)) => assert_eq!(item, 2),
            other => panic!("expected Closed, got {other:?}"),
        }
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything_once() {
        let q: JobQueue<u64> = JobQueue::bounded(8);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let q = q.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(v) = q.pop() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let q = q.clone();
                std::thread::spawn(move || {
                    for i in 0..25u64 {
                        let v = p * 100 + i;
                        loop {
                            match q.push(v) {
                                Ok(()) => break,
                                Err(PushRefused::Full(_)) => std::thread::yield_now(),
                                Err(PushRefused::Closed(_)) => panic!("closed early"),
                            }
                        }
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        q.close();
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4u64)
            .flat_map(|p| (0..25u64).map(move |i| p * 100 + i))
            .collect();
        assert_eq!(all, expected, "every item delivered exactly once");
    }
}
