//! The chaos-soak harness: seeded fault storms against a live [`Server`],
//! with the crash-safety invariants checked end to end.
//!
//! Each seed drives one complete soak: a fresh server, a batch of jobs
//! whose fault plans (scheduled shard panics, decode-worker kills, lossy
//! links), supervision policies, random cancellations and forced
//! checkpoints are all drawn from one deterministic [`SplitMix64`]
//! stream. The harness then asserts the properties the rest of this PR
//! exists to provide:
//!
//! 1. **Bounded drain** — every soak finishes inside its watchdog
//!    timeout; no interleaving of failures, retries and cancels may hang
//!    the server.
//! 2. **Exactly one terminal event per job** — each handle's stream
//!    carries precisely one `Done`/`Cancelled`/`Failed`/
//!    `DeadlineExceeded`, however many retries preceded it.
//! 3. **Quota conservation** — once every handle is terminal,
//!    [`Server::outstanding`] reads `(0, 0)` and the backlog gauge reads
//!    zero: nothing leaked through any failure path.
//! 4. **Ledger conservation** — terminal ledger counters sum to the
//!    admitted job count.
//! 5. **Determinism through recovery** — every job that ends `Done`
//!    produced a [`RunReport`](quest_core::RunReport) bit-identical to a
//!    solo, uncontended run of its *disarmed* spec (shard panic
//!    stripped, exactly what the retry supervisor leaves armed; decode
//!    kills and link noise stay, because the runtime recovers from those
//!    in-band).
//!
//! Violations are collected, not panicked, so one bad seed reports every
//! broken invariant at once ([`ChaosReport::violations`]). The harness
//! uses no wall-clock randomness: same [`ChaosConfig`] ⇒ same storm
//! (QL02). Callers are the root `chaos_soak` integration test and the
//! `quest-cli chaos` subcommand.

use crate::{JobEvent, JobHandle, JobOutcome, RetryPolicy, Server, ServerConfig};
use quest_core::TenantId;
use quest_runtime::{Runtime, ShardPanicPlan, WorkloadSpec};
use std::time::Duration;

/// Knobs for one chaos campaign.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Seeds to soak (each is an independent storm).
    pub seeds: u64,
    /// First seed value; seed `i` of the campaign is `first_seed + i`.
    pub first_seed: u64,
    /// Jobs submitted per seed.
    pub jobs_per_seed: usize,
    /// Worker threads in each soak's server.
    pub workers: usize,
    /// Watchdog bound per seed: a soak that has not drained by then is
    /// reported as a hang (invariant 1).
    pub timeout: Duration,
    /// Probability (in percent) that the harness cancels a job mid-storm.
    /// Cancellation outcomes race with completion by design, so set this
    /// to 0 when pinning outcome *counts* across identical campaigns.
    pub cancel_percent: u64,
}

impl Default for ChaosConfig {
    fn default() -> ChaosConfig {
        ChaosConfig {
            seeds: 3,
            first_seed: 0x5EED_C4A0,
            jobs_per_seed: 8,
            workers: 2,
            timeout: Duration::from_secs(60),
            cancel_percent: 25,
        }
    }
}

impl ChaosConfig {
    /// Overrides the seed count.
    pub fn with_seeds(mut self, seeds: u64) -> ChaosConfig {
        self.seeds = seeds;
        self
    }

    /// Overrides the first seed.
    pub fn with_first_seed(mut self, seed: u64) -> ChaosConfig {
        self.first_seed = seed;
        self
    }

    /// Overrides the per-seed job count.
    pub fn with_jobs_per_seed(mut self, jobs: usize) -> ChaosConfig {
        self.jobs_per_seed = jobs;
        self
    }

    /// Overrides the per-seed worker count.
    pub fn with_workers(mut self, workers: usize) -> ChaosConfig {
        self.workers = workers;
        self
    }

    /// Overrides the per-seed watchdog timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> ChaosConfig {
        self.timeout = timeout;
        self
    }

    /// Overrides the random-cancellation probability (percent).
    pub fn with_cancel_percent(mut self, percent: u64) -> ChaosConfig {
        self.cancel_percent = percent;
        self
    }
}

/// What a chaos campaign did and whether the invariants held.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Seeds soaked to completion (a hung seed still counts as run).
    pub seeds_run: u64,
    /// Jobs admitted across all seeds.
    pub jobs_submitted: u64,
    /// Jobs that completed with a report.
    pub jobs_done: u64,
    /// Jobs cancelled (at pickup or mid-run).
    pub jobs_cancelled: u64,
    /// Jobs that failed terminally (budget exhausted or logical error).
    pub jobs_failed: u64,
    /// Jobs whose cycle deadline tripped.
    pub jobs_deadline_exceeded: u64,
    /// Retry attempts the supervisors performed.
    pub jobs_retried: u64,
    /// Every invariant violation observed, tagged with its seed. Empty
    /// means the campaign passed.
    pub violations: Vec<String>,
}

impl ChaosReport {
    /// Whether every invariant held over the whole campaign.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

impl std::fmt::Display for ChaosReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "chaos: {} seed(s), {} job(s): {} done, {} cancelled, {} failed, \
             {} deadline-exceeded, {} retries",
            self.seeds_run,
            self.jobs_submitted,
            self.jobs_done,
            self.jobs_cancelled,
            self.jobs_failed,
            self.jobs_deadline_exceeded,
            self.jobs_retried,
        )?;
        if self.violations.is_empty() {
            write!(f, "all invariants held")
        } else {
            writeln!(f, "{} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// SplitMix64: the harness's one randomness source. Deterministic,
/// seedable, and independent of the workload PRNGs (which hash their own
/// spec seeds), so the storm shape never couples to the physics.
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish draw in `0..bound` (`bound` ≥ 1).
    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }

    /// True with probability `percent`/100.
    fn chance(&mut self, percent: u64) -> bool {
        self.below(100) < percent
    }
}

/// One submitted job's book-keeping inside a soak.
struct SoakEntry {
    handle: JobHandle,
    /// The spec the retry supervisor converges to (shard panic
    /// stripped): the solo baseline for a `Done` report.
    baseline: WorkloadSpec,
    /// Whether the harness randomly cancelled this job (outcome then
    /// races between `Cancelled` and whatever it would have been).
    cancelled: bool,
    /// Whether the job carries a deadline that must trip.
    deadlined: bool,
}

/// Runs a full chaos campaign and reports. Never panics; every broken
/// invariant lands in [`ChaosReport::violations`].
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    let mut report = ChaosReport::default();
    for i in 0..config.seeds {
        let seed = config.first_seed.wrapping_add(i);
        report.seeds_run += 1;
        // Watchdog (invariant 1): the soak runs on its own thread and
        // must deliver its result within the timeout. A hung soak leaks
        // its thread — acceptable in a test harness, and the only option
        // without killable threads.
        let (tx, rx) = std::sync::mpsc::channel();
        let cfg = *config;
        let soak = std::thread::Builder::new()
            .name(format!("chaos-seed-{seed}"))
            .spawn(move || {
                let _ = tx.send(run_seed(seed, &cfg));
            });
        if soak.is_err() {
            report
                .violations
                .push(format!("seed {seed}: could not spawn soak thread"));
            continue;
        }
        match rx.recv_timeout(config.timeout) {
            Ok(seed_report) => report.absorb(seed_report),
            Err(_) => report.violations.push(format!(
                "seed {seed}: soak did not drain within {:?} (hang)",
                config.timeout
            )),
        }
    }
    report
}

impl ChaosReport {
    fn absorb(&mut self, other: ChaosReport) {
        self.jobs_submitted += other.jobs_submitted;
        self.jobs_done = self.jobs_done.saturating_add(other.jobs_done);
        self.jobs_cancelled = self.jobs_cancelled.saturating_add(other.jobs_cancelled);
        self.jobs_failed = self.jobs_failed.saturating_add(other.jobs_failed);
        self.jobs_deadline_exceeded = self
            .jobs_deadline_exceeded
            .saturating_add(other.jobs_deadline_exceeded);
        self.jobs_retried = self.jobs_retried.saturating_add(other.jobs_retried);
        self.violations.extend(other.violations);
    }
}

/// One seed's storm: submit, harass, drain, assert.
fn run_seed(seed: u64, config: &ChaosConfig) -> ChaosReport {
    let mut rng = SplitMix64::new(seed);
    let mut out = ChaosReport::default();
    let jobs = config.jobs_per_seed.max(1);
    let server = Server::start(
        ServerConfig::default()
            .with_workers(config.workers.max(1))
            .with_queue_depth(jobs),
    );
    let mut entries = Vec::with_capacity(jobs);
    for j in 0..jobs {
        let shards = 1 + rng.below(2) as usize;
        let cycles = 6 + rng.below(10);
        let mut spec = WorkloadSpec::memory(3, 2, shards, 2e-2, rng.next(), cycles);
        let mut policy = RetryPolicy::default()
            .with_checkpoint_every(1 + rng.below(3))
            .with_backoff_slots(rng.below(3));
        let mut deadlined = false;
        match rng.below(10) {
            // A scheduled shard crash with retry budget: the supervisor
            // must resume it to Done.
            0..=3 => {
                spec.faults.shard_panic = Some(ShardPanicPlan {
                    shard: rng.below(shards as u64) as usize,
                    after_cycles: 1 + rng.below(cycles - 2),
                });
                policy = policy.with_max_attempts(3);
            }
            // The same crash with no budget: must land in Failed.
            4 => {
                spec.faults.shard_panic = Some(ShardPanicPlan {
                    shard: rng.below(shards as u64) as usize,
                    after_cycles: 1 + rng.below(cycles - 2),
                });
            }
            // A decode-worker kill: the pool respawns in-band, the job
            // succeeds with a recovery footprint, no retry involved.
            5 => {
                spec.faults.kill_decode_worker_after_jobs = Some(1 + rng.below(3));
                policy = policy.with_max_attempts(2);
            }
            // A lossy control link: retransmissions recover in-band.
            6 => {
                spec.faults.drop_rate = 0.2;
                policy = policy.with_max_attempts(2);
            }
            // An undersized cycle budget: the deadline must trip.
            7 => {
                policy = policy.with_deadline_cycles(1 + rng.below(cycles - 2));
                deadlined = true;
            }
            // A clean job riding through the storm.
            _ => {}
        }
        let mut baseline = spec.clone();
        baseline.faults.shard_panic = None;
        match server.submit_with_policy(TenantId(j as u32 % 3), spec, policy) {
            Ok(handle) => {
                out.jobs_submitted += 1;
                entries.push(SoakEntry {
                    handle,
                    baseline,
                    cancelled: false,
                    deadlined,
                });
            }
            Err(e) => out
                .violations
                .push(format!("seed {seed}: admission refused a valid job: {e}")),
        }
    }
    // Harass the fleet: random cancels (not on deadline jobs, whose
    // outcome is pinned) and forced checkpoints.
    for entry in &mut entries {
        if !entry.deadlined && rng.chance(config.cancel_percent) {
            entry.handle.cancel();
            entry.cancelled = true;
        }
        if rng.chance(50) {
            entry.handle.force_checkpoint();
        }
    }
    // Drain every stream to the end, counting terminal events
    // (invariant 2) and checking Done reports against solo baselines
    // (invariant 5).
    let solo = Runtime::new();
    for (j, entry) in entries.into_iter().enumerate() {
        let mut terminals = 0u32;
        let mut outcome = None;
        while let Some(event) = entry.handle.next_event() {
            match event {
                JobEvent::Done { report, .. } => {
                    terminals += 1;
                    outcome = Some(JobOutcome::Done(report));
                }
                JobEvent::Cancelled { .. } => {
                    terminals += 1;
                    outcome = Some(JobOutcome::Cancelled);
                }
                JobEvent::Failed { error, .. } => {
                    terminals += 1;
                    outcome = Some(JobOutcome::Failed(error));
                }
                JobEvent::DeadlineExceeded { cycles_done, .. } => {
                    terminals += 1;
                    outcome = Some(JobOutcome::DeadlineExceeded { cycles_done });
                }
                JobEvent::Queued { .. }
                | JobEvent::Admitted { .. }
                | JobEvent::Running { .. }
                | JobEvent::Retrying { .. } => {}
            }
        }
        if terminals != 1 {
            out.violations.push(format!(
                "seed {seed} job {j}: {terminals} terminal events (want exactly 1)"
            ));
        }
        match outcome {
            Some(JobOutcome::Done(report)) => {
                out.jobs_done = out.jobs_done.saturating_add(1);
                if entry.deadlined {
                    out.violations.push(format!(
                        "seed {seed} job {j}: deadlined job completed instead of tripping"
                    ));
                }
                match solo.run(&entry.baseline) {
                    Ok(expected) if expected.report == report.report => {}
                    Ok(_) => out.violations.push(format!(
                        "seed {seed} job {j}: served report diverges from solo baseline"
                    )),
                    Err(e) => out
                        .violations
                        .push(format!("seed {seed} job {j}: solo baseline failed: {e}")),
                }
            }
            Some(JobOutcome::Cancelled) => {
                out.jobs_cancelled = out.jobs_cancelled.saturating_add(1);
                if !entry.cancelled {
                    out.violations.push(format!(
                        "seed {seed} job {j}: spurious cancellation (harness never cancelled it)"
                    ));
                }
            }
            Some(JobOutcome::Failed(_)) => {
                out.jobs_failed = out.jobs_failed.saturating_add(1);
            }
            Some(JobOutcome::DeadlineExceeded { .. }) => {
                out.jobs_deadline_exceeded = out.jobs_deadline_exceeded.saturating_add(1);
                if !entry.deadlined {
                    out.violations.push(format!(
                        "seed {seed} job {j}: deadline tripped on a job without one"
                    ));
                }
            }
            Some(JobOutcome::Lost) | None => out.violations.push(format!(
                "seed {seed} job {j}: stream ended without a terminal event"
            )),
        }
    }
    // Conservation (invariants 3 and 4): every reservation returned,
    // every admitted job accounted for exactly once.
    let outstanding = server.outstanding();
    if outstanding != (0, 0) {
        out.violations.push(format!(
            "seed {seed}: outstanding quota {outstanding:?} after full drain (want (0, 0))"
        ));
    }
    let backlog = server.backlog_cycles();
    if backlog != 0 {
        out.violations.push(format!(
            "seed {seed}: backlog gauge reads {backlog} after full drain (want 0)"
        ));
    }
    let ledger = server.shutdown();
    out.jobs_retried = out.jobs_retried.saturating_add(ledger.jobs_retried());
    let terminal_total = ledger.jobs_done()
        + ledger.jobs_cancelled()
        + ledger.jobs_failed()
        + ledger.jobs_deadline_exceeded();
    if terminal_total != out.jobs_submitted {
        out.violations.push(format!(
            "seed {seed}: ledger terminal total {terminal_total} != {} admitted jobs",
            out.jobs_submitted
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..8).map(|_| a.next()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next()).collect();
        assert_eq!(xs, ys, "same seed, same stream");
        assert!(xs.windows(2).all(|w| w[0] != w[1]));
        let mut c = SplitMix64::new(43);
        assert_ne!(c.next(), xs[0], "different seed diverges");
        assert!(SplitMix64::new(7).below(1) == 0, "below(1) is always 0");
    }

    #[test]
    fn one_seed_soak_passes_all_invariants() {
        let report = run_chaos(
            &ChaosConfig::default()
                .with_seeds(1)
                .with_jobs_per_seed(6)
                .with_workers(2),
        );
        assert!(report.ok(), "{report}");
        assert_eq!(report.jobs_submitted, 6);
        assert_eq!(
            report.jobs_done
                + report.jobs_cancelled
                + report.jobs_failed
                + report.jobs_deadline_exceeded,
            6
        );
    }

    #[test]
    fn identical_campaigns_produce_identical_reports() {
        // Cancellation outcomes race with completion by design, so pin
        // the campaign with cancels off: everything left is
        // deterministic (only latencies, which the report does not
        // carry, vary run to run).
        let config = ChaosConfig::default()
            .with_seeds(1)
            .with_first_seed(11)
            .with_jobs_per_seed(4)
            .with_workers(2)
            .with_cancel_percent(0);
        let a = run_chaos(&config);
        let b = run_chaos(&config);
        assert!(a.ok(), "{a}");
        assert_eq!(a, b);
    }

    #[test]
    fn report_display_summarizes_violations() {
        let mut report = ChaosReport {
            seeds_run: 2,
            jobs_submitted: 5,
            jobs_done: 4,
            ..ChaosReport::default()
        };
        assert!(format!("{report}").contains("all invariants held"));
        report.violations.push("seed 1: something leaked".into());
        let shown = format!("{report}");
        assert!(shown.contains("1 violation(s)"));
        assert!(shown.contains("something leaked"));
        assert!(!report.ok());
    }
}
