//! Pauli noise channels.
//!
//! The paper's error model (§3.1, §6.2) is a physical error rate per QECC
//! cycle on superconducting qubits. Because Pauli errors commute through
//! Clifford circuits, injecting random single-qubit Paulis between syndrome
//! rounds reproduces the standard circuit-level/phenomenological noise models
//! used in surface-code studies.

use crate::pauli::{Pauli, PauliString};
use crate::tableau::Tableau;
use rand::Rng;

/// A stochastic single-qubit Pauli channel applied independently per qubit.
pub trait NoiseChannel {
    /// Samples the error applied to one qubit.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli;

    /// Samples an error layer over `n` qubits as a [`PauliString`].
    fn sample_layer<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> PauliString {
        let mut layer = PauliString::identity(n);
        for q in 0..n {
            layer.set(q, self.sample(rng));
        }
        layer
    }

    /// Applies one sampled error layer directly to a tableau, returning the
    /// layer that was applied (for diagnostics and decoder validation).
    fn apply_layer<R: Rng + ?Sized>(&self, t: &mut Tableau, rng: &mut R) -> PauliString {
        let layer = self.sample_layer(t.num_qubits(), rng);
        t.pauli_string(&layer);
        layer
    }
}

/// Independent X/Y/Z error probabilities per qubit.
///
/// # Example
///
/// ```
/// use quest_stabilizer::{NoiseChannel, PauliChannel};
///
/// let depolarizing = PauliChannel::depolarizing(3e-3);
/// assert!((depolarizing.total_error_probability() - 3e-3).abs() < 1e-12);
/// let bitflip = PauliChannel::bit_flip(1e-2);
/// assert_eq!(bitflip.total_error_probability(), 1e-2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PauliChannel {
    px: f64,
    py: f64,
    pz: f64,
}

impl PauliChannel {
    /// Channel with explicit X/Y/Z probabilities.
    ///
    /// # Panics
    ///
    /// Panics if any probability is negative or the sum exceeds 1.
    pub fn new(px: f64, py: f64, pz: f64) -> PauliChannel {
        assert!(px >= 0.0 && py >= 0.0 && pz >= 0.0, "negative probability");
        assert!(px + py + pz <= 1.0, "probabilities sum to more than 1");
        PauliChannel { px, py, pz }
    }

    /// Symmetric depolarizing channel with total error probability `p`
    /// (each Pauli with probability `p/3`).
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn depolarizing(p: f64) -> PauliChannel {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        PauliChannel::new(p / 3.0, p / 3.0, p / 3.0)
    }

    /// Pure bit-flip channel.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn bit_flip(p: f64) -> PauliChannel {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        PauliChannel::new(p, 0.0, 0.0)
    }

    /// Pure phase-flip channel.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn phase_flip(p: f64) -> PauliChannel {
        assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
        PauliChannel::new(0.0, 0.0, p)
    }

    /// The noiseless channel.
    pub fn noiseless() -> PauliChannel {
        PauliChannel::new(0.0, 0.0, 0.0)
    }

    /// Probability that *some* error occurs on a qubit.
    pub fn total_error_probability(&self) -> f64 {
        self.px + self.py + self.pz
    }

    /// X-error probability.
    pub fn px(&self) -> f64 {
        self.px
    }

    /// Y-error probability.
    pub fn py(&self) -> f64 {
        self.py
    }

    /// Z-error probability.
    pub fn pz(&self) -> f64 {
        self.pz
    }
}

impl NoiseChannel for PauliChannel {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Pauli {
        let total = self.total_error_probability();
        if total == 0.0 {
            return Pauli::I;
        }
        let u: f64 = rng.gen();
        if u < self.px {
            Pauli::X
        } else if u < self.px + self.py {
            Pauli::Y
        } else if u < total {
            Pauli::Z
        } else {
            Pauli::I
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_channel_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let ch = PauliChannel::noiseless();
        for _ in 0..100 {
            assert_eq!(ch.sample(&mut rng), Pauli::I);
        }
    }

    #[test]
    fn bit_flip_only_produces_x() {
        let mut rng = StdRng::seed_from_u64(2);
        let ch = PauliChannel::bit_flip(0.5);
        let mut seen_x = false;
        for _ in 0..200 {
            match ch.sample(&mut rng) {
                Pauli::X => seen_x = true,
                Pauli::I => {}
                other => panic!("unexpected {other}"),
            }
        }
        assert!(seen_x);
    }

    #[test]
    fn depolarizing_rate_is_approximately_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = 0.2;
        let ch = PauliChannel::depolarizing(p);
        let n = 20_000;
        let errors = (0..n).filter(|_| ch.sample(&mut rng) != Pauli::I).count();
        let rate = errors as f64 / n as f64;
        assert!((rate - p).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn layer_has_correct_length() {
        let mut rng = StdRng::seed_from_u64(4);
        let layer = PauliChannel::depolarizing(0.3).sample_layer(17, &mut rng);
        assert_eq!(layer.len(), 17);
    }

    #[test]
    fn apply_layer_reports_what_it_did() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Tableau::new(8);
        let layer = PauliChannel::bit_flip(1.0).apply_layer(&mut t, &mut rng);
        // With p = 1 every qubit gets an X and measures 1.
        assert_eq!(layer.weight(), 8);
        for q in 0..8 {
            assert!(t.measure(q, &mut rng).value);
        }
    }

    #[test]
    #[should_panic(expected = "sum to more than 1")]
    fn overfull_channel_panics() {
        PauliChannel::new(0.5, 0.4, 0.2);
    }
}
