//! Gate-level circuit representation shared by the simulators.
//!
//! A [`Circuit`] is an ordered list of [`Gate`]s. Circuits are the common
//! currency between the ISA crate (which compiles µop streams into gates),
//! the surface-code crate (which generates syndrome-extraction circuits) and
//! the simulators in this crate.

use crate::tableau::{Measurement, Tableau};
use rand::Rng;
use std::fmt;

/// A quantum gate or non-unitary operation on named qubit indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Gate {
    /// Identity / explicit idle slot.
    I(usize),
    /// Pauli X.
    X(usize),
    /// Pauli Y.
    Y(usize),
    /// Pauli Z.
    Z(usize),
    /// Hadamard.
    H(usize),
    /// Phase gate `S`.
    S(usize),
    /// Inverse phase gate `S†`.
    Sdg(usize),
    /// Controlled-NOT (control, target).
    Cnot(usize, usize),
    /// Controlled-Z.
    Cz(usize, usize),
    /// Swap.
    Swap(usize, usize),
    /// Prepare `|0⟩`.
    PrepZ(usize),
    /// Prepare `|+⟩`.
    PrepX(usize),
    /// Measure in the Z basis.
    MeasZ(usize),
    /// Measure in the X basis.
    MeasX(usize),
}

impl Gate {
    /// Qubits touched by the gate, as `(first, second)` with `second` only
    /// set for two-qubit gates.
    pub fn qubits(self) -> (usize, Option<usize>) {
        match self {
            Gate::I(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::H(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::PrepZ(q)
            | Gate::PrepX(q)
            | Gate::MeasZ(q)
            | Gate::MeasX(q) => (q, None),
            Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => (a, Some(b)),
        }
    }

    /// Largest qubit index referenced by this gate.
    pub fn max_qubit(self) -> usize {
        let (a, b) = self.qubits();
        b.map_or(a, |b| a.max(b))
    }

    /// Returns `true` for measurement operations.
    pub fn is_measurement(self) -> bool {
        matches!(self, Gate::MeasZ(_) | Gate::MeasX(_))
    }

    /// Returns `true` for state-preparation operations.
    pub fn is_preparation(self) -> bool {
        matches!(self, Gate::PrepZ(_) | Gate::PrepX(_))
    }

    /// Returns `true` for two-qubit gates.
    pub fn is_two_qubit(self) -> bool {
        self.qubits().1.is_some()
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Gate::I(q) => write!(f, "I {q}"),
            Gate::X(q) => write!(f, "X {q}"),
            Gate::Y(q) => write!(f, "Y {q}"),
            Gate::Z(q) => write!(f, "Z {q}"),
            Gate::H(q) => write!(f, "H {q}"),
            Gate::S(q) => write!(f, "S {q}"),
            Gate::Sdg(q) => write!(f, "SDG {q}"),
            Gate::Cnot(c, t) => write!(f, "CNOT {c} {t}"),
            Gate::Cz(a, b) => write!(f, "CZ {a} {b}"),
            Gate::Swap(a, b) => write!(f, "SWAP {a} {b}"),
            Gate::PrepZ(q) => write!(f, "PREPZ {q}"),
            Gate::PrepX(q) => write!(f, "PREPX {q}"),
            Gate::MeasZ(q) => write!(f, "MEASZ {q}"),
            Gate::MeasX(q) => write!(f, "MEASX {q}"),
        }
    }
}

/// An ordered sequence of gates.
///
/// # Example
///
/// ```
/// use quest_stabilizer::{Circuit, Gate, StdRng, SeedableRng};
///
/// let mut c = Circuit::new();
/// c.push(Gate::H(0));
/// c.push(Gate::Cnot(0, 1));
/// c.push(Gate::MeasZ(0));
/// c.push(Gate::MeasZ(1));
///
/// let mut rng = StdRng::seed_from_u64(3);
/// let outcome = c.run_stabilizer(2, &mut rng);
/// assert_eq!(outcome.len(), 2);
/// assert_eq!(outcome[0].value, outcome[1].value);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Circuit {
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Circuit {
        Circuit::default()
    }

    /// Appends a gate.
    pub fn push(&mut self, g: Gate) {
        self.gates.push(g);
    }

    /// Number of gates.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` when the circuit holds no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Iterates over gates in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Gate> {
        self.gates.iter()
    }

    /// Gates as a slice.
    pub fn as_slice(&self) -> &[Gate] {
        &self.gates
    }

    /// Number of qubits needed to execute the circuit (max index + 1).
    pub fn num_qubits(&self) -> usize {
        self.gates
            .iter()
            .map(|g| g.max_qubit() + 1)
            .max()
            .unwrap_or(0)
    }

    /// Number of measurement operations.
    pub fn num_measurements(&self) -> usize {
        self.gates.iter().filter(|g| g.is_measurement()).count()
    }

    /// Applies a single gate to a tableau, appending any measurement result
    /// to `results`.
    pub fn apply_gate<R: Rng + ?Sized>(
        t: &mut Tableau,
        g: Gate,
        rng: &mut R,
        results: &mut Vec<Measurement>,
    ) {
        match g {
            Gate::I(_) => {}
            Gate::X(q) => t.x(q),
            Gate::Y(q) => t.y(q),
            Gate::Z(q) => t.z(q),
            Gate::H(q) => t.h(q),
            Gate::S(q) => t.s(q),
            Gate::Sdg(q) => t.s_dagger(q),
            Gate::Cnot(c, tq) => t.cnot(c, tq),
            Gate::Cz(a, b) => t.cz(a, b),
            Gate::Swap(a, b) => t.swap(a, b),
            Gate::PrepZ(q) => t.reset(q, rng),
            Gate::PrepX(q) => t.reset_plus(q, rng),
            Gate::MeasZ(q) => results.push(t.measure(q, rng)),
            Gate::MeasX(q) => results.push(t.measure_x(q, rng)),
        }
    }

    /// Runs the circuit on a fresh `|0…0⟩` tableau of `n` qubits, returning
    /// measurement outcomes in program order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references a qubit `>= n`.
    pub fn run_stabilizer<R: Rng + ?Sized>(&self, n: usize, rng: &mut R) -> Vec<Measurement> {
        let mut t = Tableau::new(n);
        self.run_on(&mut t, rng)
    }

    /// Runs the circuit on an existing tableau, returning measurement
    /// outcomes in program order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit references a qubit outside the tableau.
    pub fn run_on<R: Rng + ?Sized>(&self, t: &mut Tableau, rng: &mut R) -> Vec<Measurement> {
        let mut results = Vec::with_capacity(self.num_measurements());
        for &g in &self.gates {
            Self::apply_gate(t, g, rng, &mut results);
        }
        results
    }
}

impl FromIterator<Gate> for Circuit {
    fn from_iter<I: IntoIterator<Item = Gate>>(iter: I) -> Circuit {
        Circuit {
            gates: iter.into_iter().collect(),
        }
    }
}

impl Extend<Gate> for Circuit {
    fn extend<I: IntoIterator<Item = Gate>>(&mut self, iter: I) {
        self.gates.extend(iter);
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Gate;
    type IntoIter = std::slice::Iter<'a, Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.iter()
    }
}

impl IntoIterator for Circuit {
    type Item = Gate;
    type IntoIter = std::vec::IntoIter<Gate>;

    fn into_iter(self) -> Self::IntoIter {
        self.gates.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn num_qubits_tracks_max_index() {
        let c: Circuit = [Gate::H(0), Gate::Cnot(0, 5)].into_iter().collect();
        assert_eq!(c.num_qubits(), 6);
        assert_eq!(Circuit::new().num_qubits(), 0);
    }

    #[test]
    fn measurement_count() {
        let c: Circuit = [Gate::MeasZ(0), Gate::H(1), Gate::MeasX(1)]
            .into_iter()
            .collect();
        assert_eq!(c.num_measurements(), 2);
    }

    #[test]
    fn run_bell_is_correlated() {
        let c: Circuit = [Gate::H(0), Gate::Cnot(0, 1), Gate::MeasZ(0), Gate::MeasZ(1)]
            .into_iter()
            .collect();
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = c.run_stabilizer(2, &mut rng);
            assert_eq!(m[0].value, m[1].value);
        }
    }

    #[test]
    fn prep_gates_reset_state() {
        let c: Circuit = [Gate::X(0), Gate::PrepZ(0), Gate::MeasZ(0)]
            .into_iter()
            .collect();
        let mut rng = StdRng::seed_from_u64(5);
        let m = c.run_stabilizer(1, &mut rng);
        assert!(!m[0].value);
        assert!(m[0].deterministic);
    }

    #[test]
    fn gate_classification() {
        assert!(Gate::MeasZ(0).is_measurement());
        assert!(Gate::PrepX(0).is_preparation());
        assert!(Gate::Cnot(0, 1).is_two_qubit());
        assert!(!Gate::H(0).is_two_qubit());
        assert_eq!(Gate::Cz(2, 7).max_qubit(), 7);
    }

    #[test]
    fn display_is_nonempty() {
        for g in [Gate::I(0), Gate::Cnot(1, 2), Gate::MeasX(3)] {
            assert!(!g.to_string().is_empty());
        }
    }
}
