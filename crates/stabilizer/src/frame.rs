//! Bit-parallel Pauli-frame Monte-Carlo engine.
//!
//! For Clifford circuits with Pauli noise, per-shot state simulation is
//! unnecessary: the *difference* between a noisy shot and a noiseless
//! reference run is itself a Pauli operator (the "frame"), and frames
//! propagate through Clifford gates by simple bit rules — no tableau, no
//! O(n²) measurements. Packing the frames of 64 independent shots into one
//! `u64` word per qubit (the construction behind Stim-class samplers) turns
//! every gate into a handful of word XOR/swap operations over all shots at
//! once.
//!
//! Semantics: [`FrameSimulator`] tracks, per qubit and per shot, the X and
//! Z components of the Pauli error separating that shot's state from the
//! reference state. Signs are not tracked — they cannot influence
//! measurement outcomes, only global phase. A shot's measurement record is
//! the reference record XOR the flip bits this engine reports.
//!
//! Determinism: all randomness is drawn from caller-provided
//! [`BlockRngs`], one independent `StdRng` per 64-shot word *block*,
//! seeded from `(master seed, global block index)`. Because each block
//! consumes its own stream in circuit order, results are bit-identical
//! regardless of how many blocks a batch holds or how blocks are spread
//! over worker threads.
//!
//! # Example
//!
//! ```
//! use quest_stabilizer::frame::{BlockRngs, FrameSimulator};
//! use quest_stabilizer::PauliChannel;
//!
//! // 128 shots of a 2-qubit circuit: X noise on qubit 0, CNOT 0→1.
//! let mut sim = FrameSimulator::new(2, 128);
//! let mut rngs = BlockRngs::new(42, 0, sim.words());
//! sim.inject_pauli_channel(&PauliChannel::bit_flip(0.5), 0, &mut rngs);
//! sim.cnot(0, 1);
//! // The error copies onto the target: flip planes agree bit-for-bit.
//! assert_eq!(sim.x_plane(0), sim.x_plane(1));
//! ```

use crate::circuit::Gate;
use crate::noise::PauliChannel;
use crate::pauli::Pauli;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shots per packed word (one bit per shot).
pub const SHOTS_PER_WORD: usize = 64;

/// SplitMix64 finalizer used to derive independent per-block seeds from a
/// master seed. Deterministic, allocation-free, and stable across
/// platforms — the whole seeding scheme of the batch samplers rests on it.
#[must_use]
pub fn block_seed(master: u64, block: u64) -> u64 {
    let mut z = master
        ^ block
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic RNG per 64-shot block.
///
/// Block `w` of a batch starting at global block `base` is seeded with
/// [`block_seed`]`(master, base + w)`, so the stream a block consumes is a
/// pure function of `(master, global block index)` — independent of batch
/// size and thread placement.
#[derive(Debug, Clone)]
pub struct BlockRngs {
    rngs: Vec<StdRng>,
}

impl BlockRngs {
    /// RNGs for `words` consecutive blocks starting at global block
    /// index `base`.
    #[must_use]
    pub fn new(master: u64, base: u64, words: usize) -> BlockRngs {
        BlockRngs {
            rngs: (0..words)
                .map(|w| StdRng::seed_from_u64(block_seed(master, base + w as u64)))
                .collect(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rngs.len()
    }

    /// `true` when no blocks are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rngs.is_empty()
    }

    #[inline]
    fn rng(&mut self, word: usize) -> &mut StdRng {
        &mut self.rngs[word]
    }
}

/// Bit-packed Pauli-frame simulator over `n` qubits × `B` shots.
///
/// X and Z frame bits are stored as `ceil(B/64)` words per qubit
/// (qubit-major layout). All gate updates are word-wise, i.e. they act on
/// 64 shots per machine operation.
#[derive(Debug, Clone)]
pub struct FrameSimulator {
    n: usize,
    words: usize,
    /// X frame planes, `x[q * words + w]`.
    x: Vec<u64>,
    /// Z frame planes, same layout.
    z: Vec<u64>,
}

impl FrameSimulator {
    /// Creates an all-identity frame batch for `n` qubits and at least
    /// `shots` shots (rounded up to a whole number of 64-shot words).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `shots` is zero.
    #[must_use]
    pub fn new(n: usize, shots: usize) -> FrameSimulator {
        assert!(n > 0, "frame simulator needs at least one qubit");
        assert!(shots > 0, "frame simulator needs at least one shot");
        let words = shots.div_ceil(SHOTS_PER_WORD);
        FrameSimulator {
            n,
            words,
            x: vec![0; n * words],
            z: vec![0; n * words],
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Number of 64-shot words per plane.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Shot capacity (a multiple of 64).
    #[must_use]
    pub fn num_shots(&self) -> usize {
        self.words * SHOTS_PER_WORD
    }

    /// Clears every frame back to identity, keeping the allocation.
    pub fn clear(&mut self) {
        self.x.iter_mut().for_each(|w| *w = 0);
        self.z.iter_mut().for_each(|w| *w = 0);
    }

    #[inline]
    fn check_qubit(&self, q: usize) {
        assert!(q < self.n, "qubit index {q} out of range (n = {})", self.n);
    }

    #[inline]
    fn span(&self, q: usize) -> core::ops::Range<usize> {
        q * self.words..(q + 1) * self.words
    }

    /// X-component plane of qubit `q` (one bit per shot).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    #[must_use]
    pub fn x_plane(&self, q: usize) -> &[u64] {
        self.check_qubit(q);
        &self.x[self.span(q)]
    }

    /// Z-component plane of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    #[must_use]
    pub fn z_plane(&self, q: usize) -> &[u64] {
        self.check_qubit(q);
        &self.z[self.span(q)]
    }

    /// Sets the frame of `shot` on qubit `q` to the given Pauli (used by
    /// deterministic fault injection and the equivalence tests).
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    pub fn set_frame(&mut self, q: usize, shot: usize, p: Pauli) {
        self.check_qubit(q);
        assert!(shot < self.num_shots(), "shot index out of range");
        let idx = q * self.words + shot / SHOTS_PER_WORD;
        let mask = 1u64 << (shot % SHOTS_PER_WORD);
        let (xb, zb) = match p {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        };
        self.x[idx] = (self.x[idx] & !mask) | if xb { mask } else { 0 };
        self.z[idx] = (self.z[idx] & !mask) | if zb { mask } else { 0 };
    }

    /// XORs the given Pauli into the frame of one shot on qubit `q`
    /// (mid-circuit deterministic fault injection: errors compose with
    /// whatever frame has already accumulated).
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    pub fn xor_frame(&mut self, q: usize, shot: usize, p: Pauli) {
        self.check_qubit(q);
        assert!(shot < self.num_shots(), "shot index out of range");
        let idx = q * self.words + shot / SHOTS_PER_WORD;
        let mask = 1u64 << (shot % SHOTS_PER_WORD);
        let (xb, zb) = match p {
            Pauli::I => (false, false),
            Pauli::X => (true, false),
            Pauli::Y => (true, true),
            Pauli::Z => (false, true),
        };
        if xb {
            self.x[idx] ^= mask;
        }
        if zb {
            self.z[idx] ^= mask;
        }
    }

    /// XORs a Pauli into the frame of every shot on qubit `q` at once
    /// (word-broadcast error injection).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn broadcast_pauli(&mut self, q: usize, p: Pauli) {
        self.check_qubit(q);
        let span = self.span(q);
        match p {
            Pauli::I => {}
            Pauli::X => self.x[span].iter_mut().for_each(|w| *w = !*w),
            Pauli::Z => self.z[span].iter_mut().for_each(|w| *w = !*w),
            Pauli::Y => {
                self.x[span.clone()].iter_mut().for_each(|w| *w = !*w);
                self.z[span].iter_mut().for_each(|w| *w = !*w);
            }
        }
    }

    /// Hadamard on `q`: conjugation swaps the X and Z frame components.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn h(&mut self, q: usize) {
        self.check_qubit(q);
        for i in self.span(q) {
            core::mem::swap(&mut self.x[i], &mut self.z[i]);
        }
    }

    /// Phase gate on `q`: `S X S† = Y`, so the X component gains a Z
    /// component (`z ^= x`). Identical rule for `S†` (signs untracked).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn s(&mut self, q: usize) {
        self.check_qubit(q);
        for i in self.span(q) {
            self.z[i] ^= self.x[i];
        }
    }

    /// CNOT: X copies control→target, Z copies target→control.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert_ne!(c, t, "CNOT control and target must differ");
        for w in 0..self.words {
            self.x[t * self.words + w] ^= self.x[c * self.words + w];
            self.z[c * self.words + w] ^= self.z[t * self.words + w];
        }
    }

    /// Controlled-Z: the X component of each side adds a Z on the other.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert_ne!(a, b, "CZ qubits must differ");
        for w in 0..self.words {
            let xa = self.x[a * self.words + w];
            let xb = self.x[b * self.words + w];
            self.z[a * self.words + w] ^= xb;
            self.z[b * self.words + w] ^= xa;
        }
    }

    /// Swap: exchanges both frame planes of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert_ne!(a, b, "SWAP qubits must differ");
        for w in 0..self.words {
            self.x.swap(a * self.words + w, b * self.words + w);
            self.z.swap(a * self.words + w, b * self.words + w);
        }
    }

    /// Preparation in either basis: both the reference and the shot
    /// collapse to the same prepared state, so the frame resets to
    /// identity on `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn prep(&mut self, q: usize) {
        self.check_qubit(q);
        let span = self.span(q);
        self.x[span.clone()].iter_mut().for_each(|w| *w = 0);
        self.z[span].iter_mut().for_each(|w| *w = 0);
    }

    /// Z-basis measurement of `q`: appends one flip word per block to
    /// `flips_out` (bit set ⇔ that shot's outcome differs from the
    /// reference outcome). The unobservable Z component is cleared; the X
    /// component persists (the shot's post-measurement state still differs
    /// from the reference by X).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn meas_z(&mut self, q: usize, flips_out: &mut Vec<u64>) {
        self.check_qubit(q);
        let span = self.span(q);
        flips_out.extend_from_slice(&self.x[span.clone()]);
        self.z[span].iter_mut().for_each(|w| *w = 0);
    }

    /// X-basis measurement of `q`: flip bits are the Z component; the
    /// unobservable X component is cleared.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn meas_x(&mut self, q: usize, flips_out: &mut Vec<u64>) {
        self.check_qubit(q);
        let span = self.span(q);
        flips_out.extend_from_slice(&self.z[span.clone()]);
        self.x[span].iter_mut().for_each(|w| *w = 0);
    }

    /// Applies one circuit gate to the whole batch. Pauli gates are
    /// frame-level no-ops (they commute with any frame up to sign).
    /// Measurement gates append their flip words to `meas_out` in program
    /// order, exactly mirroring [`crate::Circuit::apply_gate`].
    ///
    /// # Panics
    ///
    /// Panics if the gate references an out-of-bounds qubit.
    pub fn apply_gate(&mut self, g: Gate, meas_out: &mut Vec<u64>) {
        match g {
            Gate::I(_) | Gate::X(_) | Gate::Y(_) | Gate::Z(_) => {}
            Gate::H(q) => self.h(q),
            Gate::S(q) | Gate::Sdg(q) => self.s(q),
            Gate::Cnot(c, t) => self.cnot(c, t),
            Gate::Cz(a, b) => self.cz(a, b),
            Gate::Swap(a, b) => self.swap(a, b),
            Gate::PrepZ(q) | Gate::PrepX(q) => self.prep(q),
            Gate::MeasZ(q) => self.meas_z(q, meas_out),
            Gate::MeasX(q) => self.meas_x(q, meas_out),
        }
    }

    /// Samples one layer of a Pauli channel onto qubit `q`, drawing each
    /// shot's error from its block's RNG. Two bit-planes (X and Z
    /// components) are built per call; Y errors set both. Only the first
    /// `rngs.len()` words are touched — a short final batch may drive a
    /// simulator sized for a full one, and its dead trailing words stay
    /// clear.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds or `rngs` holds more blocks than
    /// the simulator has words.
    pub fn inject_pauli_channel(&mut self, channel: &PauliChannel, q: usize, rngs: &mut BlockRngs) {
        self.check_qubit(q);
        assert!(rngs.len() <= self.words, "more RNG blocks than shot words");
        let (px, py) = (channel.px(), channel.py());
        let total = channel.total_error_probability();
        if total == 0.0 {
            return;
        }
        for w in 0..rngs.len() {
            let rng = rngs.rng(w);
            let mut xbits = 0u64;
            let mut zbits = 0u64;
            for bit in 0..SHOTS_PER_WORD {
                let u: f64 = rng.gen();
                let mask = 1u64 << bit;
                if u < px {
                    xbits |= mask;
                } else if u < px + py {
                    xbits |= mask;
                    zbits |= mask;
                } else if u < total {
                    zbits |= mask;
                }
            }
            self.x[q * self.words + w] ^= xbits;
            self.z[q * self.words + w] ^= zbits;
        }
    }

    /// Samples an independent flip plane (one bit per shot, set with
    /// probability `p`) and XORs it into `plane` — classical
    /// measurement-flip injection. Consumes 64 draws per block when
    /// `p > 0`, keeping block streams aligned regardless of how many bits
    /// land set.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `plane.len() != rngs.len()`.
    pub fn xor_flip_plane(p: f64, rngs: &mut BlockRngs, plane: &mut [u64]) {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert_eq!(plane.len(), rngs.len(), "one plane word per RNG block");
        if p == 0.0 {
            return;
        }
        for (w, word) in plane.iter_mut().enumerate() {
            let rng = rngs.rng(w);
            let mut bits = 0u64;
            for bit in 0..SHOTS_PER_WORD {
                let u: f64 = rng.gen();
                if u < p {
                    bits |= 1u64 << bit;
                }
            }
            *word ^= bits;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::tableau::Tableau;
    use crate::PauliString;

    #[test]
    fn cnot_copies_x_to_target_and_z_to_control() {
        let mut sim = FrameSimulator::new(2, 64);
        sim.set_frame(0, 3, Pauli::X);
        sim.set_frame(1, 5, Pauli::Z);
        sim.cnot(0, 1);
        assert_eq!(sim.x_plane(0)[0], 1 << 3);
        assert_eq!(sim.x_plane(1)[0], 1 << 3);
        assert_eq!(sim.z_plane(0)[0], 1 << 5);
        assert_eq!(sim.z_plane(1)[0], 1 << 5);
    }

    #[test]
    fn h_swaps_components_and_s_makes_y() {
        let mut sim = FrameSimulator::new(1, 64);
        sim.set_frame(0, 0, Pauli::X);
        sim.h(0);
        assert_eq!(sim.x_plane(0)[0], 0);
        assert_eq!(sim.z_plane(0)[0], 1);
        sim.h(0);
        sim.s(0);
        // X -> Y: both components set.
        assert_eq!(sim.x_plane(0)[0], 1);
        assert_eq!(sim.z_plane(0)[0], 1);
    }

    #[test]
    fn measurement_flip_bits_match_tableau_outcomes() {
        // For every single-qubit Pauli error injected ahead of a circuit
        // whose reference measurements are all deterministic, the
        // frame-predicted flip bits must equal the difference between the
        // errored and error-free tableau runs. (Bit-exactness is only
        // guaranteed for measurements deterministic in the reference —
        // exactly the regime the surface-code sampler operates in.)
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut circuit = Circuit::new();
        // HSSH ≅ X: exercises H and S while keeping q0 computational.
        circuit.push(Gate::H(0));
        circuit.push(Gate::S(0));
        circuit.push(Gate::S(0));
        circuit.push(Gate::H(0));
        circuit.push(Gate::Cnot(0, 1));
        circuit.push(Gate::Swap(1, 2));
        circuit.push(Gate::Cz(0, 2));
        circuit.push(Gate::H(3));
        for q in 0..3 {
            circuit.push(Gate::MeasZ(q));
        }
        circuit.push(Gate::MeasX(3));
        for victim in 0..4usize {
            for p in Pauli::ERRORS {
                let mut rng_a = StdRng::seed_from_u64(11);
                let mut rng_b = StdRng::seed_from_u64(11);
                let reference = circuit.run_stabilizer(4, &mut rng_a);
                assert!(reference.iter().all(|m| m.deterministic));
                let mut t = Tableau::new(4);
                t.pauli_string(&PauliString::from_sparse(4, &[(victim, p)]));
                let noisy = circuit.run_on(&mut t, &mut rng_b);

                let mut sim = FrameSimulator::new(4, 64);
                sim.set_frame(victim, 0, p);
                let mut flips = Vec::new();
                for &g in &circuit {
                    sim.apply_gate(g, &mut flips);
                }
                assert_eq!(flips.len(), 4);
                for (m, (r, f)) in reference.iter().zip(noisy.iter().zip(&flips)) {
                    let flipped = f & 1 == 1;
                    assert_eq!(m.value != r.value, flipped, "victim {victim}, error {p:?}");
                }
            }
        }
    }

    #[test]
    fn prep_clears_and_meas_clears_unobservable_component() {
        let mut sim = FrameSimulator::new(1, 64);
        sim.set_frame(0, 0, Pauli::Y);
        let mut flips = Vec::new();
        sim.meas_z(0, &mut flips);
        assert_eq!(flips, vec![1]);
        assert_eq!(sim.z_plane(0)[0], 0, "Z is a phase on a Z eigenstate");
        assert_eq!(sim.x_plane(0)[0], 1, "X survives measurement");
        sim.prep(0);
        assert_eq!(sim.x_plane(0)[0], 0);
    }

    #[test]
    fn channel_injection_rate_is_approximately_p() {
        let mut sim = FrameSimulator::new(1, 64 * 256);
        let mut rngs = BlockRngs::new(7, 0, sim.words());
        sim.inject_pauli_channel(&PauliChannel::depolarizing(0.3), 0, &mut rngs);
        let errors: u32 = (0..sim.words())
            .map(|w| (sim.x_plane(0)[w] | sim.z_plane(0)[w]).count_ones())
            .sum();
        let rate = f64::from(errors) / (64.0 * 256.0);
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn block_streams_are_independent_of_batch_layout() {
        // Sampling blocks [0,4) in one batch must equal sampling [0,2)
        // and [2,4) in two batches.
        let channel = PauliChannel::depolarizing(0.2);
        let mut whole = FrameSimulator::new(2, 4 * 64);
        let mut rngs = BlockRngs::new(99, 0, 4);
        for q in 0..2 {
            whole.inject_pauli_channel(&channel, q, &mut rngs);
        }
        let mut lo = FrameSimulator::new(2, 2 * 64);
        let mut rngs_lo = BlockRngs::new(99, 0, 2);
        let mut hi = FrameSimulator::new(2, 2 * 64);
        let mut rngs_hi = BlockRngs::new(99, 2, 2);
        for q in 0..2 {
            lo.inject_pauli_channel(&channel, q, &mut rngs_lo);
            hi.inject_pauli_channel(&channel, q, &mut rngs_hi);
        }
        for q in 0..2 {
            assert_eq!(&whole.x_plane(q)[..2], lo.x_plane(q));
            assert_eq!(&whole.x_plane(q)[2..], hi.x_plane(q));
            assert_eq!(&whole.z_plane(q)[..2], lo.z_plane(q));
            assert_eq!(&whole.z_plane(q)[2..], hi.z_plane(q));
        }
    }

    #[test]
    fn flip_plane_tracks_probability() {
        let mut rngs = BlockRngs::new(3, 0, 128);
        let mut plane = vec![0u64; 128];
        FrameSimulator::xor_flip_plane(0.1, &mut rngs, &mut plane);
        let ones: u32 = plane.iter().map(|w| w.count_ones()).sum();
        let rate = f64::from(ones) / (128.0 * 64.0);
        assert!((rate - 0.1).abs() < 0.02, "rate = {rate}");
        let mut none = vec![0u64; 4];
        FrameSimulator::xor_flip_plane(0.0, &mut BlockRngs::new(3, 0, 4), &mut none);
        assert!(none.iter().all(|&w| w == 0));
    }

    #[test]
    fn xor_frame_composes_with_existing_frame() {
        let mut sim = FrameSimulator::new(1, 64);
        sim.xor_frame(0, 2, Pauli::X);
        sim.xor_frame(0, 2, Pauli::Z); // X then Z = Y (mod sign)
        assert_eq!(sim.x_plane(0)[0], 1 << 2);
        assert_eq!(sim.z_plane(0)[0], 1 << 2);
        sim.xor_frame(0, 2, Pauli::Y); // cancels
        assert_eq!(sim.x_plane(0)[0], 0);
        assert_eq!(sim.z_plane(0)[0], 0);
    }

    #[test]
    fn broadcast_and_clear() {
        let mut sim = FrameSimulator::new(2, 128);
        sim.broadcast_pauli(1, Pauli::Y);
        assert!(sim.x_plane(1).iter().all(|&w| w == u64::MAX));
        assert!(sim.z_plane(1).iter().all(|&w| w == u64::MAX));
        assert!(sim.x_plane(0).iter().all(|&w| w == 0));
        sim.clear();
        assert!(sim.x_plane(1).iter().all(|&w| w == 0));
        assert!(sim.z_plane(1).iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut sim = FrameSimulator::new(2, 64);
        sim.h(2);
    }
}
