//! Bit-parallel Pauli-frame Monte-Carlo engine.
//!
//! For Clifford circuits with Pauli noise, per-shot state simulation is
//! unnecessary: the *difference* between a noisy shot and a noiseless
//! reference run is itself a Pauli operator (the "frame"), and frames
//! propagate through Clifford gates by simple bit rules — no tableau, no
//! O(n²) measurements. Packing the frames of many independent shots into
//! one machine word per qubit (the construction behind Stim-class
//! samplers) turns every gate into a handful of word XOR/swap operations
//! over all packed shots at once.
//!
//! The word type is pluggable: [`FrameSimulator`] is generic over
//! [`FrameWord`], packing 64 shots (`u64`, the default), 256 ([`W256`])
//! or 512 ([`W512`]) shots per plane word. See [`LaneWidth`] for the
//! runtime selector.
//!
//! Semantics: [`FrameSimulator`] tracks, per qubit and per shot, the X and
//! Z components of the Pauli error separating that shot's state from the
//! reference state. Signs are not tracked — they cannot influence
//! measurement outcomes, only global phase. A shot's measurement record is
//! the reference record XOR the flip bits this engine reports.
//!
//! Determinism: all randomness is drawn from caller-provided
//! [`BlockRngs`], one independent `StdRng` per 64-shot *block*, seeded
//! from `(master seed, global block index)`. Because each block consumes
//! its own stream in circuit order, and block `b` always occupies lane
//! `b % LANES` of word `b / LANES`, results are bit-identical regardless
//! of how many blocks a batch holds, how blocks are spread over worker
//! threads, *and which lane width is in use*. Noise injection uses
//! inverse-geometric skip sampling (exactly Bernoulli per bit, see
//! [`FrameSimulator::inject_pauli_channel`]), so the draw count per block
//! scales with the expected number of errors instead of the shot count.
//!
//! # Example
//!
//! ```
//! use quest_stabilizer::frame::{BlockRngs, FrameSimulator};
//! use quest_stabilizer::PauliChannel;
//!
//! // 128 shots of a 2-qubit circuit: X noise on qubit 0, CNOT 0→1.
//! let mut sim: FrameSimulator = FrameSimulator::new(2, 128);
//! let mut rngs = BlockRngs::new(42, 0, sim.blocks());
//! sim.inject_pauli_channel(&PauliChannel::bit_flip(0.5), 0, &mut rngs);
//! sim.cnot(0, 1);
//! // The error copies onto the target: flip planes agree bit-for-bit.
//! assert_eq!(sim.x_plane(0), sim.x_plane(1));
//! ```

mod planes;
mod word;

pub use planes::FramePlanes;
pub use word::{FrameWord, LaneWidth, W256, W512};

use crate::circuit::Gate;
use crate::noise::PauliChannel;
use crate::pauli::Pauli;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shots per 64-bit lane — the granularity of RNG blocks and of the
/// determinism contract. (Wide words pack `LANES` of these per word.)
pub const SHOTS_PER_WORD: usize = 64;

/// SplitMix64 finalizer used to derive independent per-block seeds from a
/// master seed. Deterministic, allocation-free, and stable across
/// platforms — the whole seeding scheme of the batch samplers rests on it.
#[must_use]
pub fn block_seed(master: u64, block: u64) -> u64 {
    let mut z = master
        ^ block
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(0x243F_6A88_85A3_08D3);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One deterministic RNG per 64-shot block.
///
/// Block `b` of a batch starting at global block `base` is seeded with
/// [`block_seed`]`(master, base + b)`, so the stream a block consumes is a
/// pure function of `(master, global block index)` — independent of batch
/// size, thread placement and lane width.
#[derive(Debug, Clone)]
pub struct BlockRngs {
    rngs: Vec<StdRng>,
}

impl BlockRngs {
    /// RNGs for `blocks` consecutive 64-shot blocks starting at global
    /// block index `base`.
    #[must_use]
    pub fn new(master: u64, base: u64, blocks: usize) -> BlockRngs {
        BlockRngs {
            rngs: (0..blocks)
                .map(|b| StdRng::seed_from_u64(block_seed(master, base + b as u64)))
                .collect(),
        }
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rngs.len()
    }

    /// `true` when no blocks are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rngs.is_empty()
    }

    #[inline]
    fn rng(&mut self, block: usize) -> &mut StdRng {
        &mut self.rngs[block]
    }
}

/// Iterates the error positions of one 64-shot block by inverse-geometric
/// skips: with `inv_ln_q = 1 / ln(1 - p)`, the gap to the next error bit
/// is `floor(ln(1-u) / ln(1-p))`, which is exactly Geometric(p) for
/// `u ~ U[0,1)` — so each bit is independently Bernoulli(p), the same
/// distribution as drawing one uniform per bit, at ~`64p + 1` draws per
/// block instead of 64. `on_error` receives the bit index and the block's
/// RNG (for the error-kind draw).
#[inline]
fn for_each_error_bit(
    rng: &mut StdRng,
    inv_ln_q: f64,
    mut on_error: impl FnMut(usize, &mut StdRng),
) {
    let mut i = 0usize;
    loop {
        let u: f64 = rng.gen();
        // ln(1-u) ≤ 0 and inv_ln_q < 0, so the skip is a non-negative
        // float; the `as usize` cast saturates huge values to the break.
        let skip = ((-u).ln_1p() * inv_ln_q) as usize;
        i = i.saturating_add(skip);
        if i >= SHOTS_PER_WORD {
            break;
        }
        on_error(i, rng);
        i += 1;
    }
}

/// Bit-packed Pauli-frame simulator over `n` qubits × `shots` shots.
///
/// X and Z frame bits are stored as [`FramePlanes`] (qubit-major,
/// `ceil(shots / W::BITS)` words per qubit). All gate updates are
/// word-wise, i.e. they act on `W::BITS` shots per machine operation.
#[derive(Debug, Clone)]
pub struct FrameSimulator<W: FrameWord = u64> {
    x: FramePlanes<W>,
    z: FramePlanes<W>,
}

impl<W: FrameWord> FrameSimulator<W> {
    /// Creates an all-identity frame batch for `n` qubits and exactly
    /// `shots` shots (plane capacity rounds up to a whole word; see
    /// [`FrameSimulator::capacity`]).
    ///
    /// # Panics
    ///
    /// Panics if `n` or `shots` is zero.
    #[must_use]
    pub fn new(n: usize, shots: usize) -> FrameSimulator<W> {
        FrameSimulator {
            x: FramePlanes::new(n, shots),
            z: FramePlanes::new(n, shots),
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.x.num_planes()
    }

    /// Number of words per plane.
    #[must_use]
    pub fn words(&self) -> usize {
        self.x.words()
    }

    /// Exact number of shots requested at construction.
    #[must_use]
    pub fn num_shots(&self) -> usize {
        self.x.shots()
    }

    /// Shot capacity (`words() * W::BITS`); bits past
    /// [`FrameSimulator::num_shots`] are dead lanes that consumers must
    /// mask (see [`FrameSimulator::tail_mask`]).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.x.capacity()
    }

    /// Live 64-shot blocks (`ceil(shots / 64)`) — the length
    /// [`BlockRngs`] should be built with.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.x.blocks()
    }

    /// Mask of live bits in the final word of every plane.
    #[must_use]
    pub fn tail_mask(&self) -> W {
        self.x.tail_mask()
    }

    /// Clears every frame back to identity, keeping the allocation.
    pub fn clear(&mut self) {
        self.x.clear();
        self.z.clear();
    }

    #[inline]
    fn check_qubit(&self, q: usize) {
        assert!(
            q < self.num_qubits(),
            "qubit index {q} out of range (n = {})",
            self.num_qubits()
        );
    }

    /// X-component plane of qubit `q` (one bit per shot).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    #[must_use]
    pub fn x_plane(&self, q: usize) -> &[W] {
        self.x.plane(q)
    }

    /// Z-component plane of qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    #[must_use]
    pub fn z_plane(&self, q: usize) -> &[W] {
        self.z.plane(q)
    }

    /// Sets the frame of `shot` on qubit `q` to the given Pauli (used by
    /// deterministic fault injection and the equivalence tests).
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    pub fn set_frame(&mut self, q: usize, shot: usize, p: Pauli) {
        let (xb, zb) = pauli_components(p);
        self.x.set(q, shot, xb);
        self.z.set(q, shot, zb);
    }

    /// XORs the given Pauli into the frame of one shot on qubit `q`
    /// (mid-circuit deterministic fault injection: errors compose with
    /// whatever frame has already accumulated).
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    pub fn xor_frame(&mut self, q: usize, shot: usize, p: Pauli) {
        let (xb, zb) = pauli_components(p);
        self.x.toggle(q, shot, xb);
        self.z.toggle(q, shot, zb);
    }

    /// XORs a Pauli into the frame of every shot on qubit `q` at once
    /// (word-broadcast error injection).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn broadcast_pauli(&mut self, q: usize, p: Pauli) {
        match p {
            Pauli::I => {}
            Pauli::X => self.x.not_plane(q),
            Pauli::Z => self.z.not_plane(q),
            Pauli::Y => {
                self.x.not_plane(q);
                self.z.not_plane(q);
            }
        }
    }

    /// Hadamard on `q`: conjugation swaps the X and Z frame components.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn h(&mut self, q: usize) {
        for (xw, zw) in self
            .x
            .plane_mut(q)
            .iter_mut()
            .zip(self.z.plane_mut(q).iter_mut())
        {
            core::mem::swap(xw, zw);
        }
    }

    /// Phase gate on `q`: `S X S† = Y`, so the X component gains a Z
    /// component (`z ^= x`). Identical rule for `S†` (signs untracked).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn s(&mut self, q: usize) {
        for (zw, &xw) in self.z.plane_mut(q).iter_mut().zip(self.x.plane(q)) {
            *zw = zw.xor(xw);
        }
    }

    /// CNOT: X copies control→target, Z copies target→control.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert_ne!(c, t, "CNOT control and target must differ");
        self.x.xor_from(c, t);
        self.z.xor_from(t, c);
    }

    /// Controlled-Z: the X component of each side adds a Z on the other.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert_ne!(a, b, "CZ qubits must differ");
        for w in 0..self.words() {
            let xa = self.x.plane(a)[w];
            let xb = self.x.plane(b)[w];
            {
                let za = &mut self.z.plane_mut(a)[w];
                *za = za.xor(xb);
            }
            let zb = &mut self.z.plane_mut(b)[w];
            *zb = zb.xor(xa);
        }
    }

    /// Swap: exchanges both frame planes of `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert_ne!(a, b, "SWAP qubits must differ");
        self.x.swap_planes(a, b);
        self.z.swap_planes(a, b);
    }

    /// Preparation in either basis: both the reference and the shot
    /// collapse to the same prepared state, so the frame resets to
    /// identity on `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn prep(&mut self, q: usize) {
        self.x.zero_plane(q);
        self.z.zero_plane(q);
    }

    /// Z-basis measurement of `q`: appends one flip word per plane word to
    /// `flips_out` (bit set ⇔ that shot's outcome differs from the
    /// reference outcome). The unobservable Z component is cleared; the X
    /// component persists (the shot's post-measurement state still differs
    /// from the reference by X).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn meas_z(&mut self, q: usize, flips_out: &mut Vec<W>) {
        flips_out.extend_from_slice(self.x.plane(q));
        self.z.zero_plane(q);
    }

    /// X-basis measurement of `q`: flip bits are the Z component; the
    /// unobservable X component is cleared.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn meas_x(&mut self, q: usize, flips_out: &mut Vec<W>) {
        flips_out.extend_from_slice(self.z.plane(q));
        self.x.zero_plane(q);
    }

    /// Applies one circuit gate to the whole batch. Pauli gates are
    /// frame-level no-ops (they commute with any frame up to sign).
    /// Measurement gates append their flip words to `meas_out` in program
    /// order, exactly mirroring [`crate::Circuit::apply_gate`].
    ///
    /// # Panics
    ///
    /// Panics if the gate references an out-of-bounds qubit.
    pub fn apply_gate(&mut self, g: Gate, meas_out: &mut Vec<W>) {
        match g {
            Gate::I(_) | Gate::X(_) | Gate::Y(_) | Gate::Z(_) => {}
            Gate::H(q) => self.h(q),
            Gate::S(q) | Gate::Sdg(q) => self.s(q),
            Gate::Cnot(c, t) => self.cnot(c, t),
            Gate::Cz(a, b) => self.cz(a, b),
            Gate::Swap(a, b) => self.swap(a, b),
            Gate::PrepZ(q) | Gate::PrepX(q) => self.prep(q),
            Gate::MeasZ(q) => self.meas_z(q, meas_out),
            Gate::MeasX(q) => self.meas_x(q, meas_out),
        }
    }

    /// Samples one layer of a Pauli channel onto qubit `q`, drawing each
    /// shot's error from its 64-shot block's RNG. Error positions come
    /// from inverse-geometric skip sampling (exactly Bernoulli(p) per
    /// bit); each hit draws one extra uniform to pick X/Y/Z in proportion
    /// to the channel. Only the first `rngs.len()` blocks are touched — a
    /// short final batch may drive a simulator sized for a full one, and
    /// its dead trailing blocks stay clear.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds or `rngs` holds more blocks than
    /// the simulator's capacity.
    pub fn inject_pauli_channel(&mut self, channel: &PauliChannel, q: usize, rngs: &mut BlockRngs) {
        self.check_qubit(q);
        assert!(
            rngs.len() <= self.x.words() * W::LANES,
            "more RNG blocks than shot blocks"
        );
        let (px, py) = (channel.px(), channel.py());
        let total = channel.total_error_probability();
        if total == 0.0 {
            return;
        }
        // 1 / ln(1 - total): finite negative for total < 1, -0.0 for
        // total == 1 (every skip collapses to zero — all bits error).
        let inv_ln_q = 1.0 / (-total).ln_1p();
        let xplane = self.x.plane_mut(q);
        let zplane = self.z.plane_mut(q);
        for b in 0..rngs.len() {
            let mut xbits = 0u64;
            let mut zbits = 0u64;
            for_each_error_bit(rngs.rng(b), inv_ln_q, |bit, rng| {
                let mask = 1u64 << bit;
                let kind: f64 = rng.gen::<f64>() * total;
                if kind < px {
                    xbits |= mask;
                } else if kind < px + py {
                    xbits |= mask;
                    zbits |= mask;
                } else {
                    zbits |= mask;
                }
            });
            if xbits != 0 {
                *xplane[b / W::LANES].lane_mut(b % W::LANES) ^= xbits;
            }
            if zbits != 0 {
                *zplane[b / W::LANES].lane_mut(b % W::LANES) ^= zbits;
            }
        }
    }

    /// Samples an independent flip plane (one bit per shot, set with
    /// probability `p`) and XORs it into `plane` — classical
    /// measurement-flip injection. Uses the same inverse-geometric skip
    /// sampling as [`FrameSimulator::inject_pauli_channel`]; block `b`
    /// lands in lane `b % LANES` of `plane[b / LANES]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]` or `plane` does not hold exactly
    /// `ceil(rngs.len() / LANES)` words.
    pub fn xor_flip_plane(p: f64, rngs: &mut BlockRngs, plane: &mut [W]) {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        assert_eq!(
            plane.len(),
            rngs.len().div_ceil(W::LANES),
            "one plane word per LANES RNG blocks"
        );
        if p == 0.0 {
            return;
        }
        let inv_ln_q = 1.0 / (-p).ln_1p();
        for b in 0..rngs.len() {
            let mut bits = 0u64;
            for_each_error_bit(rngs.rng(b), inv_ln_q, |bit, _| {
                bits |= 1u64 << bit;
            });
            if bits != 0 {
                *plane[b / W::LANES].lane_mut(b % W::LANES) ^= bits;
            }
        }
    }
}

#[inline]
fn pauli_components(p: Pauli) -> (bool, bool) {
    match p {
        Pauli::I => (false, false),
        Pauli::X => (true, false),
        Pauli::Y => (true, true),
        Pauli::Z => (false, true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circuit::Circuit;
    use crate::tableau::Tableau;
    use crate::PauliString;

    #[test]
    fn cnot_copies_x_to_target_and_z_to_control() {
        let mut sim: FrameSimulator = FrameSimulator::new(2, 64);
        sim.set_frame(0, 3, Pauli::X);
        sim.set_frame(1, 5, Pauli::Z);
        sim.cnot(0, 1);
        assert_eq!(sim.x_plane(0)[0], 1 << 3);
        assert_eq!(sim.x_plane(1)[0], 1 << 3);
        assert_eq!(sim.z_plane(0)[0], 1 << 5);
        assert_eq!(sim.z_plane(1)[0], 1 << 5);
    }

    #[test]
    fn h_swaps_components_and_s_makes_y() {
        let mut sim: FrameSimulator = FrameSimulator::new(1, 64);
        sim.set_frame(0, 0, Pauli::X);
        sim.h(0);
        assert_eq!(sim.x_plane(0)[0], 0);
        assert_eq!(sim.z_plane(0)[0], 1);
        sim.h(0);
        sim.s(0);
        // X -> Y: both components set.
        assert_eq!(sim.x_plane(0)[0], 1);
        assert_eq!(sim.z_plane(0)[0], 1);
    }

    #[test]
    fn measurement_flip_bits_match_tableau_outcomes() {
        // For every single-qubit Pauli error injected ahead of a circuit
        // whose reference measurements are all deterministic, the
        // frame-predicted flip bits must equal the difference between the
        // errored and error-free tableau runs. (Bit-exactness is only
        // guaranteed for measurements deterministic in the reference —
        // exactly the regime the surface-code sampler operates in.)
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut circuit = Circuit::new();
        // HSSH ≅ X: exercises H and S while keeping q0 computational.
        circuit.push(Gate::H(0));
        circuit.push(Gate::S(0));
        circuit.push(Gate::S(0));
        circuit.push(Gate::H(0));
        circuit.push(Gate::Cnot(0, 1));
        circuit.push(Gate::Swap(1, 2));
        circuit.push(Gate::Cz(0, 2));
        circuit.push(Gate::H(3));
        for q in 0..3 {
            circuit.push(Gate::MeasZ(q));
        }
        circuit.push(Gate::MeasX(3));
        for victim in 0..4usize {
            for p in Pauli::ERRORS {
                let mut rng_a = StdRng::seed_from_u64(11);
                let mut rng_b = StdRng::seed_from_u64(11);
                let reference = circuit.run_stabilizer(4, &mut rng_a);
                assert!(reference.iter().all(|m| m.deterministic));
                let mut t = Tableau::new(4);
                t.pauli_string(&PauliString::from_sparse(4, &[(victim, p)]));
                let noisy = circuit.run_on(&mut t, &mut rng_b);

                let mut sim: FrameSimulator = FrameSimulator::new(4, 64);
                sim.set_frame(victim, 0, p);
                let mut flips = Vec::new();
                for &g in &circuit {
                    sim.apply_gate(g, &mut flips);
                }
                assert_eq!(flips.len(), 4);
                for (m, (r, f)) in reference.iter().zip(noisy.iter().zip(&flips)) {
                    let flipped = f & 1 == 1;
                    assert_eq!(m.value != r.value, flipped, "victim {victim}, error {p:?}");
                }
            }
        }
    }

    #[test]
    fn gates_are_lane_identical_across_widths() {
        // The same frames and the same gate sequence, once through a u64
        // engine (8 words) and once through a W512 engine (1 word): every
        // lane must match bit-for-bit.
        let shots = 512;
        let mut narrow: FrameSimulator<u64> = FrameSimulator::new(4, shots);
        let mut wide: FrameSimulator<W512> = FrameSimulator::new(4, shots);
        for (i, &(q, shot, p)) in [
            (0usize, 3usize, Pauli::X),
            (1, 77, Pauli::Z),
            (2, 200, Pauli::Y),
            (3, 511, Pauli::X),
            (0, 450, Pauli::Z),
        ]
        .iter()
        .enumerate()
        {
            let _ = i;
            narrow.set_frame(q, shot, p);
            wide.set_frame(q, shot, p);
        }
        let gates = [
            Gate::H(0),
            Gate::S(1),
            Gate::Cnot(0, 1),
            Gate::Cz(1, 2),
            Gate::Swap(2, 3),
            Gate::Cnot(3, 0),
            Gate::MeasZ(0),
            Gate::MeasX(1),
        ];
        let mut meas_n: Vec<u64> = Vec::new();
        let mut meas_w: Vec<W512> = Vec::new();
        for &g in &gates {
            narrow.apply_gate(g, &mut meas_n);
            wide.apply_gate(g, &mut meas_w);
        }
        for q in 0..4 {
            for b in 0..8 {
                assert_eq!(
                    narrow.x_plane(q)[b],
                    wide.x_plane(q)[0].lane(b),
                    "x q{q} b{b}"
                );
                assert_eq!(
                    narrow.z_plane(q)[b],
                    wide.z_plane(q)[0].lane(b),
                    "z q{q} b{b}"
                );
            }
        }
        assert_eq!(meas_n.len(), 16);
        assert_eq!(meas_w.len(), 2);
        for m in 0..2 {
            for b in 0..8 {
                assert_eq!(meas_n[m * 8 + b], meas_w[m].lane(b), "meas {m} lane {b}");
            }
        }
    }

    #[test]
    fn prep_clears_and_meas_clears_unobservable_component() {
        let mut sim: FrameSimulator = FrameSimulator::new(1, 64);
        sim.set_frame(0, 0, Pauli::Y);
        let mut flips = Vec::new();
        sim.meas_z(0, &mut flips);
        assert_eq!(flips, vec![1]);
        assert_eq!(sim.z_plane(0)[0], 0, "Z is a phase on a Z eigenstate");
        assert_eq!(sim.x_plane(0)[0], 1, "X survives measurement");
        sim.prep(0);
        assert_eq!(sim.x_plane(0)[0], 0);
    }

    #[test]
    fn channel_injection_rate_is_approximately_p() {
        let mut sim: FrameSimulator = FrameSimulator::new(1, 64 * 256);
        let mut rngs = BlockRngs::new(7, 0, sim.blocks());
        sim.inject_pauli_channel(&PauliChannel::depolarizing(0.3), 0, &mut rngs);
        let errors: u32 = (0..sim.words())
            .map(|w| (sim.x_plane(0)[w] | sim.z_plane(0)[w]).count_ones())
            .sum();
        let rate = f64::from(errors) / (64.0 * 256.0);
        assert!((rate - 0.3).abs() < 0.02, "rate = {rate}");
    }

    #[test]
    fn channel_kinds_split_correctly() {
        // Pure channels land in the right planes; Y sets both.
        let mut sim: FrameSimulator = FrameSimulator::new(3, 64 * 64);
        let mut rngs = BlockRngs::new(5, 0, sim.blocks());
        sim.inject_pauli_channel(&PauliChannel::bit_flip(0.2), 0, &mut rngs);
        let mut rngs = BlockRngs::new(6, 0, sim.blocks());
        sim.inject_pauli_channel(&PauliChannel::phase_flip(0.2), 1, &mut rngs);
        let mut rngs = BlockRngs::new(8, 0, sim.blocks());
        sim.inject_pauli_channel(&PauliChannel::new(0.0, 0.2, 0.0), 2, &mut rngs);
        assert!(sim.x_plane(0).iter().any(|&w| w != 0));
        assert!(sim.z_plane(0).iter().all(|&w| w == 0));
        assert!(sim.x_plane(1).iter().all(|&w| w == 0));
        assert!(sim.z_plane(1).iter().any(|&w| w != 0));
        assert_eq!(sim.x_plane(2), sim.z_plane(2), "Y sets both components");
        assert!(sim.x_plane(2).iter().any(|&w| w != 0));
    }

    #[test]
    fn certain_error_sets_every_bit() {
        // total probability 1 must deterministically error every shot —
        // the regression anchor for exact-shot-count accounting.
        let mut sim: FrameSimulator = FrameSimulator::new(1, 128);
        let mut rngs = BlockRngs::new(3, 0, sim.blocks());
        sim.inject_pauli_channel(&PauliChannel::bit_flip(1.0), 0, &mut rngs);
        assert!(sim.x_plane(0).iter().all(|&w| w == u64::MAX));
        assert!(sim.z_plane(0).iter().all(|&w| w == 0));
        let mut plane = vec![0u64; 2];
        FrameSimulator::<u64>::xor_flip_plane(1.0, &mut BlockRngs::new(3, 0, 2), &mut plane);
        assert!(plane.iter().all(|&w| w == u64::MAX));
    }

    #[test]
    fn block_streams_are_independent_of_batch_layout() {
        // Sampling blocks [0,4) in one batch must equal sampling [0,2)
        // and [2,4) in two batches.
        let channel = PauliChannel::depolarizing(0.2);
        let mut whole: FrameSimulator = FrameSimulator::new(2, 4 * 64);
        let mut rngs = BlockRngs::new(99, 0, 4);
        for q in 0..2 {
            whole.inject_pauli_channel(&channel, q, &mut rngs);
        }
        let mut lo: FrameSimulator = FrameSimulator::new(2, 2 * 64);
        let mut rngs_lo = BlockRngs::new(99, 0, 2);
        let mut hi: FrameSimulator = FrameSimulator::new(2, 2 * 64);
        let mut rngs_hi = BlockRngs::new(99, 2, 2);
        for q in 0..2 {
            lo.inject_pauli_channel(&channel, q, &mut rngs_lo);
            hi.inject_pauli_channel(&channel, q, &mut rngs_hi);
        }
        for q in 0..2 {
            assert_eq!(&whole.x_plane(q)[..2], lo.x_plane(q));
            assert_eq!(&whole.x_plane(q)[2..], hi.x_plane(q));
            assert_eq!(&whole.z_plane(q)[..2], lo.z_plane(q));
            assert_eq!(&whole.z_plane(q)[2..], hi.z_plane(q));
        }
    }

    #[test]
    fn injection_is_lane_identical_across_widths() {
        // The same (master, base) blocks through u64 and W256 engines:
        // block b must land in lane b % 4 of word b / 4, bit-for-bit.
        let channel = PauliChannel::depolarizing(0.15);
        let mut narrow: FrameSimulator<u64> = FrameSimulator::new(2, 8 * 64);
        let mut rngs = BlockRngs::new(41, 16, 8);
        for q in 0..2 {
            narrow.inject_pauli_channel(&channel, q, &mut rngs);
        }
        let mut wide: FrameSimulator<W256> = FrameSimulator::new(2, 8 * 64);
        let mut rngs = BlockRngs::new(41, 16, 8);
        for q in 0..2 {
            wide.inject_pauli_channel(&channel, q, &mut rngs);
        }
        for q in 0..2 {
            for b in 0..8 {
                assert_eq!(narrow.x_plane(q)[b], wide.x_plane(q)[b / 4].lane(b % 4));
                assert_eq!(narrow.z_plane(q)[b], wide.z_plane(q)[b / 4].lane(b % 4));
            }
        }
        // Same for the classical flip planes.
        let mut plane_n = vec![0u64; 8];
        FrameSimulator::<u64>::xor_flip_plane(0.07, &mut BlockRngs::new(13, 5, 8), &mut plane_n);
        let mut plane_w = vec![W256::ZERO; 2];
        FrameSimulator::<W256>::xor_flip_plane(0.07, &mut BlockRngs::new(13, 5, 8), &mut plane_w);
        for b in 0..8 {
            assert_eq!(plane_n[b], plane_w[b / 4].lane(b % 4), "flip block {b}");
        }
    }

    #[test]
    fn flip_plane_tracks_probability() {
        let mut rngs = BlockRngs::new(3, 0, 128);
        let mut plane = vec![0u64; 128];
        FrameSimulator::<u64>::xor_flip_plane(0.1, &mut rngs, &mut plane);
        let ones: u32 = plane.iter().map(|w| w.count_ones()).sum();
        let rate = f64::from(ones) / (128.0 * 64.0);
        assert!((rate - 0.1).abs() < 0.02, "rate = {rate}");
        let mut none = vec![0u64; 4];
        FrameSimulator::<u64>::xor_flip_plane(0.0, &mut BlockRngs::new(3, 0, 4), &mut none);
        assert!(none.iter().all(|&w| w == 0));
    }

    #[test]
    fn xor_frame_composes_with_existing_frame() {
        let mut sim: FrameSimulator = FrameSimulator::new(1, 64);
        sim.xor_frame(0, 2, Pauli::X);
        sim.xor_frame(0, 2, Pauli::Z); // X then Z = Y (mod sign)
        assert_eq!(sim.x_plane(0)[0], 1 << 2);
        assert_eq!(sim.z_plane(0)[0], 1 << 2);
        sim.xor_frame(0, 2, Pauli::Y); // cancels
        assert_eq!(sim.x_plane(0)[0], 0);
        assert_eq!(sim.z_plane(0)[0], 0);
    }

    #[test]
    fn broadcast_and_clear() {
        let mut sim: FrameSimulator = FrameSimulator::new(2, 128);
        sim.broadcast_pauli(1, Pauli::Y);
        assert!(sim.x_plane(1).iter().all(|&w| w == u64::MAX));
        assert!(sim.z_plane(1).iter().all(|&w| w == u64::MAX));
        assert!(sim.x_plane(0).iter().all(|&w| w == 0));
        sim.clear();
        assert!(sim.x_plane(1).iter().all(|&w| w == 0));
        assert!(sim.z_plane(1).iter().all(|&w| w == 0));
    }

    #[test]
    fn exact_shot_count_is_reported() {
        let sim: FrameSimulator<W512> = FrameSimulator::new(2, 100);
        assert_eq!(sim.num_shots(), 100);
        assert_eq!(sim.capacity(), 512);
        assert_eq!(sim.blocks(), 2);
        assert_eq!(sim.tail_mask().count_ones(), 100);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut sim: FrameSimulator = FrameSimulator::new(2, 64);
        sim.h(2);
    }
}
