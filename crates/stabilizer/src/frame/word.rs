//! Wide frame words: the bit-plane element type of the batch engine.
//!
//! [`FrameWord`] abstracts "one machine word of shots" so the frame
//! simulator can pack 64 (`u64`), 256 ([`W256`]) or 512 ([`W512`]) shots
//! into every plane word. The wide types are plain `[u64; N]` arrays whose
//! operations are fixed-length lane loops — the optimiser unrolls them and
//! lowers them to SSE/AVX register ops without any target-feature
//! gymnastics. Every operation is defined lane-wise, so lane `l` of a wide
//! word behaves exactly like a standalone `u64` word.
//!
//! That lane discipline is the whole width-invariance argument: a 64-shot
//! *block* never mixes bits with its neighbours, randomness is drawn per
//! block (see [`super::BlockRngs`]), and block `b` of a batch always lands
//! in lane `b % LANES` of word `b / LANES`. Widening therefore changes how
//! many blocks one instruction touches — never which bits any block holds.

/// One machine word of per-shot bits: 64-shot lanes packed `LANES` wide.
///
/// Implementations must keep every operation lane-local (no carries, no
/// shuffles across lanes); the frame engine's bit-for-bit equivalence
/// between lane widths rests on it.
pub trait FrameWord: Copy + PartialEq + Eq + core::fmt::Debug + Send + Sync + 'static {
    /// Number of 64-shot lanes per word.
    const LANES: usize;
    /// Shots (bits) per word.
    const BITS: usize;
    /// The all-zero word.
    const ZERO: Self;
    /// The all-ones word.
    const ONES: Self;

    /// Lane `l` (shots `64*l .. 64*(l+1)` within the word).
    fn lane(&self, l: usize) -> u64;
    /// Mutable lane `l`.
    fn lane_mut(&mut self, l: usize) -> &mut u64;
    /// Lane-wise XOR.
    #[must_use]
    fn xor(self, rhs: Self) -> Self;
    /// Lane-wise AND.
    #[must_use]
    fn and(self, rhs: Self) -> Self;
    /// Lane-wise OR.
    #[must_use]
    fn or(self, rhs: Self) -> Self;
    /// Lane-wise NOT.
    #[must_use]
    fn not(self) -> Self;
    /// Population count over all lanes.
    fn count_ones(self) -> u32;

    /// `true` when no bit is set.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Mask whose lowest `bits` shot positions are set.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or exceeds [`FrameWord::BITS`].
    #[must_use]
    fn low_mask(bits: usize) -> Self {
        assert!(
            bits >= 1 && bits <= Self::BITS,
            "mask width must be in 1..=BITS"
        );
        let mut w = Self::ZERO;
        for l in 0..Self::LANES {
            let live = bits.saturating_sub(l * 64).min(64);
            *w.lane_mut(l) = match live {
                0 => 0,
                64 => u64::MAX,
                _ => (1u64 << live) - 1,
            };
        }
        w
    }
}

impl FrameWord for u64 {
    const LANES: usize = 1;
    const BITS: usize = 64;
    const ZERO: u64 = 0;
    const ONES: u64 = u64::MAX;

    #[inline]
    fn lane(&self, l: usize) -> u64 {
        debug_assert_eq!(l, 0);
        *self
    }

    #[inline]
    fn lane_mut(&mut self, l: usize) -> &mut u64 {
        debug_assert_eq!(l, 0);
        self
    }

    #[inline]
    fn xor(self, rhs: u64) -> u64 {
        self ^ rhs
    }

    #[inline]
    fn and(self, rhs: u64) -> u64 {
        self & rhs
    }

    #[inline]
    fn or(self, rhs: u64) -> u64 {
        self | rhs
    }

    #[inline]
    fn not(self) -> u64 {
        !self
    }

    #[inline]
    fn count_ones(self) -> u32 {
        u64::count_ones(self)
    }
}

macro_rules! wide_word {
    ($name:ident, $lanes:expr, $align:expr, $doc:expr) => {
        #[doc = $doc]
        #[derive(Clone, Copy, PartialEq, Eq, Debug)]
        #[repr(align($align))]
        pub struct $name(pub [u64; $lanes]);

        impl FrameWord for $name {
            const LANES: usize = $lanes;
            const BITS: usize = $lanes * 64;
            const ZERO: $name = $name([0; $lanes]);
            const ONES: $name = $name([u64::MAX; $lanes]);

            #[inline]
            fn lane(&self, l: usize) -> u64 {
                self.0[l]
            }

            #[inline]
            fn lane_mut(&mut self, l: usize) -> &mut u64 {
                &mut self.0[l]
            }

            #[inline]
            fn xor(mut self, rhs: $name) -> $name {
                for l in 0..$lanes {
                    self.0[l] ^= rhs.0[l];
                }
                self
            }

            #[inline]
            fn and(mut self, rhs: $name) -> $name {
                for l in 0..$lanes {
                    self.0[l] &= rhs.0[l];
                }
                self
            }

            #[inline]
            fn or(mut self, rhs: $name) -> $name {
                for l in 0..$lanes {
                    self.0[l] |= rhs.0[l];
                }
                self
            }

            #[inline]
            fn not(mut self) -> $name {
                for l in 0..$lanes {
                    self.0[l] = !self.0[l];
                }
                self
            }

            #[inline]
            fn count_ones(self) -> u32 {
                let mut n = 0u32;
                for l in 0..$lanes {
                    n += self.0[l].count_ones();
                }
                n
            }
        }
    };
}

wide_word!(
    W256,
    4,
    32,
    "A 256-bit frame word: four 64-shot lanes (one AVX2 register)."
);
wide_word!(
    W512,
    8,
    64,
    "A 512-bit frame word: eight 64-shot lanes (one AVX-512 register, \
     or a pair of AVX2 ops on narrower machines)."
);

/// Runtime selector for the frame engine's word width.
///
/// All widths produce bit-identical results for the same `(shots, seed)`
/// (see the `frame_equivalence` tests); wider words trade plane-memory
/// granularity for fewer, fatter instructions on the gate path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneWidth {
    /// One 64-shot lane per word (`u64`).
    X1,
    /// Four lanes, 256 shots per word ([`W256`]).
    X4,
    /// Eight lanes, 512 shots per word ([`W512`]) — the default.
    #[default]
    X8,
}

impl LaneWidth {
    /// Every available width, narrowest first.
    pub const ALL: [LaneWidth; 3] = [LaneWidth::X1, LaneWidth::X4, LaneWidth::X8];

    /// Number of 64-shot lanes per word.
    #[must_use]
    pub fn lanes(self) -> usize {
        match self {
            LaneWidth::X1 => 1,
            LaneWidth::X4 => 4,
            LaneWidth::X8 => 8,
        }
    }

    /// Shots per word.
    #[must_use]
    pub fn bits(self) -> usize {
        self.lanes() * 64
    }

    /// Display name: the word width in bits.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LaneWidth::X1 => "64",
            LaneWidth::X4 => "256",
            LaneWidth::X8 => "512",
        }
    }

    /// Parses `"64"`/`"256"`/`"512"` (or `"x1"`/`"x4"`/`"x8"`).
    #[must_use]
    pub fn parse(s: &str) -> Option<LaneWidth> {
        match s {
            "64" | "x1" => Some(LaneWidth::X1),
            "256" | "x4" => Some(LaneWidth::X4),
            "512" | "x8" => Some(LaneWidth::X8),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_lanes<W: FrameWord>() {
        assert_eq!(W::BITS, W::LANES * 64);
        assert_eq!(W::ZERO.count_ones(), 0);
        assert_eq!(W::ONES.count_ones() as usize, W::BITS);
        assert!(W::ZERO.is_zero());
        assert!(!W::ONES.is_zero());
        assert_eq!(W::ONES.not(), W::ZERO);

        // Set one bit per lane and check lane isolation.
        let mut w = W::ZERO;
        for l in 0..W::LANES {
            *w.lane_mut(l) = 1u64 << l;
        }
        for l in 0..W::LANES {
            assert_eq!(w.lane(l), 1u64 << l);
        }
        assert_eq!(w.count_ones() as usize, W::LANES);
        assert_eq!(w.xor(w), W::ZERO);
        assert_eq!(w.and(W::ONES), w);
        assert_eq!(w.or(W::ZERO), w);
    }

    #[test]
    fn lane_ops_hold_for_all_widths() {
        exercise_lanes::<u64>();
        exercise_lanes::<W256>();
        exercise_lanes::<W512>();
    }

    fn exercise_low_mask<W: FrameWord>() {
        assert_eq!(W::low_mask(W::BITS), W::ONES);
        assert_eq!(W::low_mask(1).count_ones(), 1);
        for bits in [1, 63, 64, W::BITS.min(65), W::BITS - 1, W::BITS] {
            let m = W::low_mask(bits);
            assert_eq!(m.count_ones() as usize, bits, "bits = {bits}");
            // The mask must be a prefix: lane l fully set below the cut.
            for l in 0..W::LANES {
                let live = bits.saturating_sub(l * 64).min(64);
                let expect = match live {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << live) - 1,
                };
                assert_eq!(m.lane(l), expect);
            }
        }
    }

    #[test]
    fn low_mask_is_a_bit_prefix() {
        exercise_low_mask::<u64>();
        exercise_low_mask::<W256>();
        exercise_low_mask::<W512>();
    }

    #[test]
    #[should_panic(expected = "mask width")]
    fn low_mask_rejects_zero() {
        let _ = u64::low_mask(0);
    }

    #[test]
    fn lane_width_round_trips() {
        for w in LaneWidth::ALL {
            assert_eq!(LaneWidth::parse(w.name()), Some(w));
            assert_eq!(w.bits(), w.lanes() * 64);
        }
        assert_eq!(LaneWidth::parse("x4"), Some(LaneWidth::X4));
        assert_eq!(LaneWidth::parse("128"), None);
        assert_eq!(LaneWidth::default(), LaneWidth::X8);
    }
}
