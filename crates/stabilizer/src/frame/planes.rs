//! Bit-plane storage: `n` qubit planes × `shots` shot bits, packed into
//! [`FrameWord`]s.
//!
//! [`FramePlanes`] records the *exact* requested shot count alongside the
//! word-rounded capacity. Earlier revisions rounded `shots` up to a whole
//! word and let downstream reports count the padded shots; now the padding
//! is explicit: [`FramePlanes::shots`] is what the caller asked for,
//! [`FramePlanes::capacity`] is what the words hold, and
//! [`FramePlanes::tail_mask`] selects the live bits of the final word so
//! consumers can zero dead lanes before counting anything.

use super::word::FrameWord;

/// `n` bit-planes of `shots` bits each, qubit-major
/// (`bits[q * words + w]`).
#[derive(Debug, Clone)]
pub struct FramePlanes<W: FrameWord> {
    n: usize,
    shots: usize,
    words: usize,
    bits: Vec<W>,
}

impl<W: FrameWord> FramePlanes<W> {
    /// All-zero planes for `n` qubits × `shots` shots. Capacity rounds up
    /// to a whole word; the exact `shots` is kept for tail masking.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `shots` is zero.
    #[must_use]
    pub fn new(n: usize, shots: usize) -> FramePlanes<W> {
        assert!(n > 0, "need at least one plane");
        assert!(shots > 0, "need at least one shot");
        let words = shots.div_ceil(W::BITS);
        FramePlanes {
            n,
            shots,
            words,
            bits: vec![W::ZERO; n * words],
        }
    }

    /// Number of planes (qubits).
    #[must_use]
    pub fn num_planes(&self) -> usize {
        self.n
    }

    /// Exact shot count requested at construction.
    #[must_use]
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Words per plane.
    #[must_use]
    pub fn words(&self) -> usize {
        self.words
    }

    /// Shot capacity (`words * W::BITS`, a multiple of the word width).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.words * W::BITS
    }

    /// Live 64-shot blocks (`ceil(shots / 64)`).
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.shots.div_ceil(64)
    }

    /// Mask of live bits in the final word of every plane; all other
    /// words are fully live.
    #[must_use]
    pub fn tail_mask(&self) -> W {
        let live = self.shots - (self.words - 1) * W::BITS;
        W::low_mask(live)
    }

    #[inline]
    fn check_plane(&self, q: usize) {
        assert!(q < self.n, "plane index {q} out of range (n = {})", self.n);
    }

    /// Plane `q` as a word slice.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    #[must_use]
    pub fn plane(&self, q: usize) -> &[W] {
        self.check_plane(q);
        &self.bits[q * self.words..(q + 1) * self.words]
    }

    /// Mutable plane `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn plane_mut(&mut self, q: usize) -> &mut [W] {
        self.check_plane(q);
        &mut self.bits[q * self.words..(q + 1) * self.words]
    }

    /// Zeroes every plane, keeping the allocation.
    pub fn clear(&mut self) {
        self.bits.iter_mut().for_each(|w| *w = W::ZERO);
    }

    /// Zeroes plane `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn zero_plane(&mut self, q: usize) {
        self.plane_mut(q).iter_mut().for_each(|w| *w = W::ZERO);
    }

    /// Inverts plane `q` (all capacity bits, dead tail included; mask at
    /// readout).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn not_plane(&mut self, q: usize) {
        self.plane_mut(q).iter_mut().for_each(|w| *w = w.not());
    }

    /// `dst ^= src`, word-wise over whole planes.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `src == dst`.
    pub fn xor_from(&mut self, src: usize, dst: usize) {
        self.check_plane(src);
        self.check_plane(dst);
        assert_ne!(src, dst, "source and destination planes must differ");
        for w in 0..self.words {
            let s = self.bits[src * self.words + w];
            let d = &mut self.bits[dst * self.words + w];
            *d = d.xor(s);
        }
    }

    /// Exchanges planes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn swap_planes(&mut self, a: usize, b: usize) {
        self.check_plane(a);
        self.check_plane(b);
        assert_ne!(a, b, "swapped planes must differ");
        for w in 0..self.words {
            self.bits.swap(a * self.words + w, b * self.words + w);
        }
    }

    #[inline]
    fn bit_coords(&self, q: usize, shot: usize) -> (usize, usize, u64) {
        self.check_plane(q);
        assert!(shot < self.shots, "shot index out of range");
        let word = shot / W::BITS;
        let lane = (shot % W::BITS) / 64;
        let mask = 1u64 << (shot % 64);
        (q * self.words + word, lane, mask)
    }

    /// Bit at `(q, shot)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    #[must_use]
    pub fn get(&self, q: usize, shot: usize) -> bool {
        let (idx, lane, mask) = self.bit_coords(q, shot);
        self.bits[idx].lane(lane) & mask != 0
    }

    /// Sets the bit at `(q, shot)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    pub fn set(&mut self, q: usize, shot: usize, value: bool) {
        let (idx, lane, mask) = self.bit_coords(q, shot);
        let lane = self.bits[idx].lane_mut(lane);
        *lane = (*lane & !mask) | if value { mask } else { 0 };
    }

    /// XORs `value` into the bit at `(q, shot)`.
    ///
    /// # Panics
    ///
    /// Panics if `q` or `shot` is out of bounds.
    pub fn toggle(&mut self, q: usize, shot: usize, value: bool) {
        if value {
            let (idx, lane, mask) = self.bit_coords(q, shot);
            *self.bits[idx].lane_mut(lane) ^= mask;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::word::{W256, W512};
    use super::*;

    fn exercise_round_trip<W: FrameWord>() {
        // A non-multiple-of-64 shot count: exact count preserved, capacity
        // rounded, tail mask covers exactly the live bits.
        let shots = 100;
        let mut p: FramePlanes<W> = FramePlanes::new(3, shots);
        assert_eq!(p.shots(), shots);
        assert_eq!(p.capacity(), shots.div_ceil(W::BITS) * W::BITS);
        assert_eq!(p.blocks(), 2);
        let live_in_tail = shots - (p.words() - 1) * W::BITS;
        assert_eq!(p.tail_mask().count_ones() as usize, live_in_tail);

        for shot in [0, 63, 64, shots - 1] {
            p.set(1, shot, true);
            assert!(p.get(1, shot));
            assert!(!p.get(0, shot));
            p.toggle(1, shot, true);
            assert!(!p.get(1, shot));
        }
    }

    #[test]
    fn round_trip_all_widths() {
        exercise_round_trip::<u64>();
        exercise_round_trip::<W256>();
        exercise_round_trip::<W512>();
    }

    #[test]
    fn xor_from_and_swap() {
        let mut p: FramePlanes<W256> = FramePlanes::new(2, 256);
        p.set(0, 7, true);
        p.set(0, 200, true);
        p.xor_from(0, 1);
        assert!(p.get(1, 7) && p.get(1, 200));
        p.set(1, 9, true);
        p.swap_planes(0, 1);
        assert!(p.get(0, 9));
        assert!(!p.get(1, 9));
        assert!(p.get(0, 7) && p.get(1, 7));
    }

    #[test]
    #[should_panic(expected = "shot index out of range")]
    fn exact_shot_bound_is_enforced() {
        // Capacity rounds to 64 but only 10 shots are live.
        let p: FramePlanes<u64> = FramePlanes::new(1, 10);
        let _ = p.get(0, 10);
    }
}
