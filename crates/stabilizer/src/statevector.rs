//! Dense state-vector simulator for small qubit counts.
//!
//! Used to cross-validate the stabilizer tableau (property tests run random
//! Clifford circuits on both engines and compare outcome determinism and
//! values) and to model the non-Clifford T gate used by magic-state
//! distillation.

use crate::circuit::{Circuit, Gate};
use rand::Rng;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// Minimal complex number (avoids an external dependency).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// `0 + 0i`.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// `1 + 0i`.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };
    /// `0 + 1i`.
    pub const I: Complex = Complex { re: 0.0, im: 1.0 };

    /// Builds a complex number from parts.
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// `e^{iθ}`.
    pub fn from_polar_unit(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        *self = *self + rhs;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl fmt::Display for Complex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+.4}{:+.4}i", self.re, self.im)
    }
}

/// Maximum qubit count accepted by [`StateVector::new`]; `2^24` amplitudes
/// (256 MiB) is already past anything this repository needs.
pub const MAX_QUBITS: usize = 24;

/// Dense `2^n`-amplitude state-vector simulator.
///
/// # Example
///
/// ```
/// use quest_stabilizer::{StateVector, StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(9);
/// let mut sv = StateVector::new(2);
/// sv.h(0);
/// sv.cnot(0, 1);
/// let a = sv.measure(0, &mut rng);
/// let b = sv.measure(1, &mut rng);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone)]
pub struct StateVector {
    n: usize,
    amps: Vec<Complex>,
}

impl StateVector {
    /// Creates the `|0…0⟩` state on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or greater than [`MAX_QUBITS`].
    pub fn new(n: usize) -> StateVector {
        assert!(n > 0, "state vector needs at least one qubit");
        assert!(
            n <= MAX_QUBITS,
            "state vector limited to {MAX_QUBITS} qubits"
        );
        let mut amps = vec![Complex::ZERO; 1 << n];
        amps[0] = Complex::ONE;
        StateVector { n, amps }
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Amplitude of basis state `idx` (bit `q` of `idx` is qubit `q`).
    ///
    /// # Panics
    ///
    /// Panics if `idx >= 2^n`.
    pub fn amplitude(&self, idx: usize) -> Complex {
        self.amps[idx]
    }

    #[inline]
    fn check_qubit(&self, q: usize) {
        assert!(q < self.n, "qubit index {q} out of range (n = {})", self.n);
    }

    /// Applies an arbitrary single-qubit unitary given by its 2×2 matrix
    /// `[[a, b], [c, d]]`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn apply_1q(&mut self, q: usize, a: Complex, b: Complex, c: Complex, d: Complex) {
        self.check_qubit(q);
        let mask = 1usize << q;
        for i in 0..self.amps.len() {
            if i & mask == 0 {
                let j = i | mask;
                let (v0, v1) = (self.amps[i], self.amps[j]);
                self.amps[i] = a * v0 + b * v1;
                self.amps[j] = c * v0 + d * v1;
            }
        }
    }

    /// Hadamard gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn h(&mut self, q: usize) {
        let s = Complex::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        self.apply_1q(q, s, s, s, -s);
    }

    /// Pauli X.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn x(&mut self, q: usize) {
        self.apply_1q(q, Complex::ZERO, Complex::ONE, Complex::ONE, Complex::ZERO);
    }

    /// Pauli Y.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn y(&mut self, q: usize) {
        self.apply_1q(q, Complex::ZERO, -Complex::I, Complex::I, Complex::ZERO);
    }

    /// Pauli Z.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn z(&mut self, q: usize) {
        self.apply_1q(q, Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::ONE);
    }

    /// Phase gate `S`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn s(&mut self, q: usize) {
        self.apply_1q(q, Complex::ONE, Complex::ZERO, Complex::ZERO, Complex::I);
    }

    /// Inverse phase gate `S†`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn s_dagger(&mut self, q: usize) {
        self.apply_1q(q, Complex::ONE, Complex::ZERO, Complex::ZERO, -Complex::I);
    }

    /// T gate (`π/8` rotation, the non-Clifford gate requiring magic
    /// states in the fault-tolerant model).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn t(&mut self, q: usize) {
        let phase = Complex::from_polar_unit(std::f64::consts::FRAC_PI_4);
        self.apply_1q(q, Complex::ONE, Complex::ZERO, Complex::ZERO, phase);
    }

    /// Inverse T gate.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn t_dagger(&mut self, q: usize) {
        let phase = Complex::from_polar_unit(-std::f64::consts::FRAC_PI_4);
        self.apply_1q(q, Complex::ONE, Complex::ZERO, Complex::ZERO, phase);
    }

    /// CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert_ne!(c, t, "CNOT control and target must differ");
        let cm = 1usize << c;
        let tm = 1usize << t;
        for i in 0..self.amps.len() {
            if i & cm != 0 && i & tm == 0 {
                self.amps.swap(i, i | tm);
            }
        }
    }

    /// Controlled-Z between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.check_qubit(a);
        self.check_qubit(b);
        assert_ne!(a, b, "CZ qubits must differ");
        let am = 1usize << a;
        let bm = 1usize << b;
        for i in 0..self.amps.len() {
            if i & am != 0 && i & bm != 0 {
                self.amps[i] = -self.amps[i];
            }
        }
    }

    /// Swap gate.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }

    /// Probability that measuring qubit `q` yields 1.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn prob_one(&self, q: usize) -> f64 {
        self.check_qubit(q);
        let mask = 1usize << q;
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i & mask != 0)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures qubit `q` in the Z basis, collapsing the state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.gen::<f64>() < p1;
        self.collapse(q, outcome, if outcome { p1 } else { 1.0 - p1 });
        outcome
    }

    /// Resets qubit `q` to `|0⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng) {
            self.x(q);
        }
    }

    fn collapse(&mut self, q: usize, outcome: bool, prob: f64) {
        let mask = 1usize << q;
        let norm = 1.0 / prob.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & mask != 0) == outcome {
                *a = *a * norm;
            } else {
                *a = Complex::ZERO;
            }
        }
    }

    /// Applies a Clifford [`Gate`]; measurement outcomes are appended to
    /// `results` as booleans.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits.
    pub fn apply_gate<R: Rng + ?Sized>(&mut self, g: Gate, rng: &mut R, results: &mut Vec<bool>) {
        match g {
            Gate::I(_) => {}
            Gate::X(q) => self.x(q),
            Gate::Y(q) => self.y(q),
            Gate::Z(q) => self.z(q),
            Gate::H(q) => self.h(q),
            Gate::S(q) => self.s(q),
            Gate::Sdg(q) => self.s_dagger(q),
            Gate::Cnot(c, t) => self.cnot(c, t),
            Gate::Cz(a, b) => self.cz(a, b),
            Gate::Swap(a, b) => self.swap(a, b),
            Gate::PrepZ(q) => self.reset(q, rng),
            Gate::PrepX(q) => {
                self.reset(q, rng);
                self.h(q);
            }
            Gate::MeasZ(q) => results.push(self.measure(q, rng)),
            Gate::MeasX(q) => {
                self.h(q);
                let m = self.measure(q, rng);
                self.h(q);
                results.push(m);
            }
        }
    }

    /// Runs a Clifford circuit, returning measurement outcomes in order.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range qubits.
    pub fn run_circuit<R: Rng + ?Sized>(&mut self, c: &Circuit, rng: &mut R) -> Vec<bool> {
        let mut results = Vec::with_capacity(c.num_measurements());
        for &g in c {
            self.apply_gate(g, rng, &mut results);
        }
        results
    }

    /// Fidelity `|⟨self|other⟩|²` between two states.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        assert_eq!(self.n, other.n, "qubit count mismatch");
        let mut inner = Complex::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            inner += a.conj() * *b;
        }
        inner.norm_sqr()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const EPS: f64 = 1e-10;

    #[test]
    fn fresh_state_is_all_zero() {
        let sv = StateVector::new(3);
        assert!((sv.amplitude(0).norm_sqr() - 1.0).abs() < EPS);
        for q in 0..3 {
            assert!(sv.prob_one(q) < EPS);
        }
    }

    #[test]
    fn x_excites() {
        let mut sv = StateVector::new(2);
        sv.x(1);
        assert!((sv.prob_one(1) - 1.0).abs() < EPS);
        assert!(sv.prob_one(0) < EPS);
    }

    #[test]
    fn hh_is_identity() {
        let mut sv = StateVector::new(1);
        sv.h(0);
        sv.h(0);
        assert!((sv.amplitude(0).norm_sqr() - 1.0).abs() < EPS);
    }

    #[test]
    fn t_squared_is_s() {
        let mut a = StateVector::new(1);
        a.h(0);
        a.t(0);
        a.t(0);
        let mut b = StateVector::new(1);
        b.h(0);
        b.s(0);
        assert!((a.fidelity(&b) - 1.0).abs() < EPS);
    }

    #[test]
    fn t_then_t_dagger_cancels() {
        let mut a = StateVector::new(1);
        a.h(0);
        let before = a.clone();
        a.t(0);
        a.t_dagger(0);
        assert!((a.fidelity(&before) - 1.0).abs() < EPS);
    }

    #[test]
    fn bell_measurements_correlate() {
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sv = StateVector::new(2);
            sv.h(0);
            sv.cnot(0, 1);
            assert!((sv.prob_one(0) - 0.5).abs() < EPS);
            let a = sv.measure(0, &mut rng);
            let b = sv.measure(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn cz_phases_correctly() {
        // CZ on |++⟩ then H on the second qubit yields a Bell-like state;
        // check via fidelity with CNOT construction.
        let mut a = StateVector::new(2);
        a.h(0);
        a.h(1);
        a.cz(0, 1);
        a.h(1);
        let mut b = StateVector::new(2);
        b.h(0);
        b.cnot(0, 1);
        assert!((a.fidelity(&b) - 1.0).abs() < EPS);
    }

    #[test]
    fn magic_state_has_expected_amplitudes() {
        // |A⟩ = T H |0⟩ = (|0⟩ + e^{iπ/4}|1⟩)/√2.
        let mut sv = StateVector::new(1);
        sv.h(0);
        sv.t(0);
        let a0 = sv.amplitude(0);
        let a1 = sv.amplitude(1);
        assert!((a0.norm_sqr() - 0.5).abs() < EPS);
        assert!((a1.norm_sqr() - 0.5).abs() < EPS);
        let expected =
            Complex::from_polar_unit(std::f64::consts::FRAC_PI_4) * std::f64::consts::FRAC_1_SQRT_2;
        assert!((a1 - expected).norm_sqr() < EPS);
    }

    #[test]
    fn reset_restores_zero() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut sv = StateVector::new(2);
        sv.h(0);
        sv.cnot(0, 1);
        sv.reset(0, &mut rng);
        assert!(sv.prob_one(0) < EPS);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_qubit_panics() {
        let mut sv = StateVector::new(1);
        sv.h(3);
    }
}
