//! Quantum circuit simulators used as the physical substrate for the QuEST
//! reproduction.
//!
//! Two complementary simulators are provided:
//!
//! * [`Tableau`] — an Aaronson–Gottesman (CHP-style) stabilizer simulator.
//!   It simulates Clifford circuits (H, S, CNOT, Paulis, preparation and
//!   measurement) in polynomial time and is the engine behind the
//!   surface-code experiments: syndrome extraction circuits are pure Clifford
//!   circuits, and Pauli noise commutes through them, so the entire
//!   error-correction loop of the paper is exactly representable.
//! * [`StateVector`] — a small dense state-vector simulator (up to ~20
//!   qubits) used to cross-validate the tableau simulator and to model
//!   non-Clifford gates (the T gate at the heart of magic-state
//!   distillation).
//!
//! # Example
//!
//! Prepare a Bell pair and observe perfectly correlated measurements:
//!
//! ```
//! use quest_stabilizer::{Tableau, StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let mut t = Tableau::new(2);
//! t.h(0);
//! t.cnot(0, 1);
//! let a = t.measure(0, &mut rng).value;
//! let b = t.measure(1, &mut rng).value;
//! assert_eq!(a, b);
//! ```

#![forbid(unsafe_code)]

pub mod circuit;
pub mod frame;
pub mod noise;
pub mod pauli;
pub mod statevector;
pub mod tableau;

pub use circuit::{Circuit, Gate};
pub use frame::{
    block_seed, BlockRngs, FramePlanes, FrameSimulator, FrameWord, LaneWidth, SHOTS_PER_WORD, W256,
    W512,
};
pub use noise::{NoiseChannel, PauliChannel};
pub use pauli::{Pauli, PauliString};
pub use statevector::{Complex, StateVector};
pub use tableau::{Measurement, Tableau};

// Re-export the RNG types used throughout so downstream crates and doc tests
// do not need a direct `rand` dependency for seeding.
pub use rand::rngs::StdRng;
pub use rand::{Rng, SeedableRng};
