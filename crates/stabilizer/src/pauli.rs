//! Single- and multi-qubit Pauli operators.
//!
//! [`Pauli`] is the four-element single-qubit Pauli group modulo phase;
//! [`PauliString`] is an n-qubit Pauli operator with a global sign. Pauli
//! strings are used to describe injected errors, logical operators of the
//! surface code, and decoder corrections.

use std::fmt;
use std::ops::Mul;

/// A single-qubit Pauli operator (phase is tracked separately).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub enum Pauli {
    /// The identity operator.
    #[default]
    I,
    /// Bit flip.
    X,
    /// Bit and phase flip (`Y = iXZ`).
    Y,
    /// Phase flip.
    Z,
}

impl Pauli {
    /// All four Paulis, in the conventional `I, X, Y, Z` order.
    pub const ALL: [Pauli; 4] = [Pauli::I, Pauli::X, Pauli::Y, Pauli::Z];

    /// The three non-identity Paulis.
    pub const ERRORS: [Pauli; 3] = [Pauli::X, Pauli::Y, Pauli::Z];

    /// Returns `true` when the operator has an X component (X or Y).
    ///
    /// ```
    /// use quest_stabilizer::Pauli;
    /// assert!(Pauli::Y.has_x());
    /// assert!(!Pauli::Z.has_x());
    /// ```
    pub fn has_x(self) -> bool {
        matches!(self, Pauli::X | Pauli::Y)
    }

    /// Returns `true` when the operator has a Z component (Z or Y).
    pub fn has_z(self) -> bool {
        matches!(self, Pauli::Z | Pauli::Y)
    }

    /// Builds a Pauli from its X/Z components.
    ///
    /// ```
    /// use quest_stabilizer::Pauli;
    /// assert_eq!(Pauli::from_xz(true, true), Pauli::Y);
    /// ```
    pub fn from_xz(x: bool, z: bool) -> Pauli {
        match (x, z) {
            (false, false) => Pauli::I,
            (true, false) => Pauli::X,
            (true, true) => Pauli::Y,
            (false, true) => Pauli::Z,
        }
    }

    /// Returns `true` when `self` commutes with `other`.
    ///
    /// Two single-qubit Paulis anticommute exactly when they are distinct
    /// non-identity operators.
    ///
    /// ```
    /// use quest_stabilizer::Pauli;
    /// assert!(Pauli::X.commutes_with(Pauli::X));
    /// assert!(!Pauli::X.commutes_with(Pauli::Z));
    /// ```
    pub fn commutes_with(self, other: Pauli) -> bool {
        self == Pauli::I || other == Pauli::I || self == other
    }
}

impl Mul for Pauli {
    type Output = Pauli;

    /// Pauli multiplication modulo phase: `X * Z = Y`, etc.
    fn mul(self, rhs: Pauli) -> Pauli {
        Pauli::from_xz(self.has_x() ^ rhs.has_x(), self.has_z() ^ rhs.has_z())
    }
}

impl fmt::Display for Pauli {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self {
            Pauli::I => 'I',
            Pauli::X => 'X',
            Pauli::Y => 'Y',
            Pauli::Z => 'Z',
        };
        write!(f, "{c}")
    }
}

/// An n-qubit Pauli operator with a `±1` sign.
///
/// The string is stored densely; index `q` is the Pauli acting on qubit `q`.
///
/// # Example
///
/// ```
/// use quest_stabilizer::{Pauli, PauliString};
///
/// let mut p = PauliString::identity(3);
/// p.set(0, Pauli::X);
/// p.set(2, Pauli::Z);
/// assert_eq!(p.to_string(), "+XIZ");
/// assert_eq!(p.weight(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    ops: Vec<Pauli>,
    negative: bool,
}

impl PauliString {
    /// The identity operator on `n` qubits.
    pub fn identity(n: usize) -> PauliString {
        PauliString {
            ops: vec![Pauli::I; n],
            negative: false,
        }
    }

    /// Builds a Pauli string from `(qubit, Pauli)` pairs; all other qubits
    /// get the identity.
    ///
    /// # Panics
    ///
    /// Panics if any qubit index is out of bounds.
    pub fn from_sparse(n: usize, terms: &[(usize, Pauli)]) -> PauliString {
        let mut s = PauliString::identity(n);
        for &(q, p) in terms {
            s.set(q, s.get(q) * p);
        }
        s
    }

    /// Number of qubits the string is defined on.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Returns `true` for a zero-qubit string.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The Pauli acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn get(&self, q: usize) -> Pauli {
        self.ops[q]
    }

    /// Sets the Pauli acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn set(&mut self, q: usize, p: Pauli) {
        self.ops[q] = p;
    }

    /// The `±1` sign of the operator (`true` means negative).
    pub fn is_negative(&self) -> bool {
        self.negative
    }

    /// Flips the sign of the operator.
    pub fn negate(&mut self) {
        self.negative = !self.negative;
    }

    /// Number of non-identity sites.
    pub fn weight(&self) -> usize {
        self.ops.iter().filter(|&&p| p != Pauli::I).count()
    }

    /// Returns `true` when every site is the identity (the sign is ignored).
    pub fn is_identity(&self) -> bool {
        self.ops.iter().all(|&p| p == Pauli::I)
    }

    /// Returns `true` when `self` commutes with `other`.
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let anticommuting_sites = self
            .ops
            .iter()
            .zip(&other.ops)
            .filter(|(a, b)| !a.commutes_with(**b))
            .count();
        anticommuting_sites % 2 == 0
    }

    /// Multiplies `other` into `self`, tracking the sign but discarding any
    /// residual `±i` phase (which cannot occur for commuting products of
    /// Hermitian operators used in this crate).
    ///
    /// # Panics
    ///
    /// Panics if the strings have different lengths.
    pub fn mul_assign(&mut self, other: &PauliString) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        // Track the power of i accumulated by per-site multiplication:
        // X*Z = -iY, Z*X = iY, etc. We count i-exponent mod 4.
        let mut i_exp: u32 = 0;
        for (a, &b) in self.ops.iter_mut().zip(&other.ops) {
            i_exp = (i_exp + pauli_mul_i_exp(*a, b)) % 4;
            *a = *a * b;
        }
        debug_assert!(
            i_exp.is_multiple_of(2),
            "product of the two Pauli strings is not Hermitian"
        );
        if i_exp == 2 {
            self.negate();
        }
        if other.negative {
            self.negate();
        }
    }

    /// Iterates over `(qubit, Pauli)` pairs for every non-identity site.
    pub fn iter_support(&self) -> impl Iterator<Item = (usize, Pauli)> + '_ {
        self.ops
            .iter()
            .enumerate()
            .filter(|(_, &p)| p != Pauli::I)
            .map(|(q, &p)| (q, p))
    }
}

/// Exponent of `i` produced when multiplying single-qubit Paulis `a * b`.
fn pauli_mul_i_exp(a: Pauli, b: Pauli) -> u32 {
    use Pauli::*;
    match (a, b) {
        (X, Y) | (Y, Z) | (Z, X) => 1, // e.g. X*Y = iZ
        (Y, X) | (Z, Y) | (X, Z) => 3, // e.g. Y*X = -iZ
        _ => 0,
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", if self.negative { '-' } else { '+' })?;
        for p in &self.ops {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_qubit_multiplication_table() {
        use Pauli::*;
        assert_eq!(X * X, I);
        assert_eq!(X * Z, Y);
        assert_eq!(Z * X, Y);
        assert_eq!(Y * X, Z);
        assert_eq!(Y * Z, X);
        assert_eq!(I * Y, Y);
    }

    #[test]
    fn commutation_rules() {
        use Pauli::*;
        for p in Pauli::ALL {
            assert!(p.commutes_with(I));
            assert!(p.commutes_with(p));
        }
        assert!(!X.commutes_with(Z));
        assert!(!X.commutes_with(Y));
        assert!(!Y.commutes_with(Z));
    }

    #[test]
    fn from_xz_round_trips() {
        for p in Pauli::ALL {
            assert_eq!(Pauli::from_xz(p.has_x(), p.has_z()), p);
        }
    }

    #[test]
    fn string_weight_and_display() {
        let p = PauliString::from_sparse(4, &[(1, Pauli::X), (3, Pauli::Y)]);
        assert_eq!(p.weight(), 2);
        assert_eq!(p.to_string(), "+IXIY");
    }

    #[test]
    fn string_commutation_counts_anticommuting_sites() {
        let xx = PauliString::from_sparse(2, &[(0, Pauli::X), (1, Pauli::X)]);
        let zz = PauliString::from_sparse(2, &[(0, Pauli::Z), (1, Pauli::Z)]);
        let zi = PauliString::from_sparse(2, &[(0, Pauli::Z)]);
        // XX and ZZ anticommute on both sites -> commute overall.
        assert!(xx.commutes_with(&zz));
        // XX and ZI anticommute on one site -> anticommute overall.
        assert!(!xx.commutes_with(&zi));
    }

    #[test]
    fn string_multiplication_tracks_sign() {
        // (XX) * (ZZ): per-site X*Z = -iY, so (-i)^2 = -1 and the result is -YY.
        let xx = PauliString::from_sparse(2, &[(0, Pauli::X), (1, Pauli::X)]);
        let zz = PauliString::from_sparse(2, &[(0, Pauli::Z), (1, Pauli::Z)]);
        let mut prod = xx.clone();
        prod.mul_assign(&zz);
        assert_eq!(prod.get(0), Pauli::Y);
        assert_eq!(prod.get(1), Pauli::Y);
        assert!(prod.is_negative());
        // Multiplying again by ZZ returns to +XX.
        prod.mul_assign(&zz);
        assert_eq!(prod, xx);
    }

    #[test]
    fn sparse_builder_multiplies_repeated_sites() {
        let p = PauliString::from_sparse(1, &[(0, Pauli::X), (0, Pauli::Z)]);
        assert_eq!(p.get(0), Pauli::Y);
    }
}
