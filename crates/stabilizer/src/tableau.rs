//! Aaronson–Gottesman stabilizer tableau simulator.
//!
//! The tableau tracks `2n` Pauli rows (n destabilizers followed by n
//! stabilizers) plus one scratch row, each stored as bit-packed X and Z
//! vectors with a sign bit. Clifford gates update rows in O(n) time;
//! measurement is O(n²) worst case. This is the standard CHP construction
//! from Aaronson & Gottesman, *Improved simulation of stabilizer circuits*
//! (2004).

use crate::pauli::{Pauli, PauliString};
use rand::Rng;

const WORD_BITS: usize = 64;

/// Outcome of a single-qubit measurement in the computational basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Measurement {
    /// The measured bit.
    pub value: bool,
    /// `true` when the outcome was fully determined by the state (no
    /// randomness was consumed).
    pub deterministic: bool,
}

/// CHP-style stabilizer tableau over `n` qubits.
///
/// Newly constructed tableaus hold the all-zeros state `|0…0⟩`.
///
/// # Example
///
/// ```
/// use quest_stabilizer::{Tableau, StdRng, SeedableRng};
///
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut t = Tableau::new(3);
/// t.h(0);
/// t.cnot(0, 1);
/// t.cnot(1, 2);
/// // GHZ state: all three measurements agree.
/// let m0 = t.measure(0, &mut rng).value;
/// assert_eq!(t.measure(1, &mut rng).value, m0);
/// assert_eq!(t.measure(2, &mut rng).value, m0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tableau {
    n: usize,
    words: usize,
    /// X bit-matrix, `(2n + 1)` rows of `words` u64 words each, flattened.
    x: Vec<u64>,
    /// Z bit-matrix with the same layout.
    z: Vec<u64>,
    /// Sign bits (`true` = −1) for each row.
    r: Vec<bool>,
}

impl Tableau {
    /// Creates a tableau for `n` qubits in the `|0…0⟩` state.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Tableau {
        assert!(n > 0, "tableau needs at least one qubit");
        let words = n.div_ceil(WORD_BITS);
        let rows = 2 * n + 1;
        let mut t = Tableau {
            n,
            words,
            x: vec![0; rows * words],
            z: vec![0; rows * words],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.set_x(i, i, true); // destabilizer i = X_i
            t.set_z(n + i, i, true); // stabilizer i = Z_i
        }
        t
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    /// Reinitialises the tableau to the `|0…0⟩` state in place, keeping
    /// its allocations. Running many shots through one tableau via
    /// `reset_all` avoids reallocating the `O(n²)` bit-matrices per shot.
    /// (Named `reset_all` because [`Tableau::reset`] is the single-qubit
    /// reset operation.)
    pub fn reset_all(&mut self) {
        self.x.iter_mut().for_each(|w| *w = 0);
        self.z.iter_mut().for_each(|w| *w = 0);
        self.r.iter_mut().for_each(|s| *s = false);
        for i in 0..self.n {
            self.set_x(i, i, true);
            self.set_z(self.n + i, i, true);
        }
    }

    #[inline]
    fn xw(&self, row: usize) -> &[u64] {
        &self.x[row * self.words..(row + 1) * self.words]
    }

    #[inline]
    fn zw(&self, row: usize) -> &[u64] {
        &self.z[row * self.words..(row + 1) * self.words]
    }

    #[inline]
    fn get_x(&self, row: usize, q: usize) -> bool {
        self.x[row * self.words + q / WORD_BITS] >> (q % WORD_BITS) & 1 == 1
    }

    #[inline]
    fn get_z(&self, row: usize, q: usize) -> bool {
        self.z[row * self.words + q / WORD_BITS] >> (q % WORD_BITS) & 1 == 1
    }

    #[inline]
    fn set_x(&mut self, row: usize, q: usize, v: bool) {
        let idx = row * self.words + q / WORD_BITS;
        let mask = 1u64 << (q % WORD_BITS);
        if v {
            self.x[idx] |= mask;
        } else {
            self.x[idx] &= !mask;
        }
    }

    #[inline]
    fn set_z(&mut self, row: usize, q: usize, v: bool) {
        let idx = row * self.words + q / WORD_BITS;
        let mask = 1u64 << (q % WORD_BITS);
        if v {
            self.z[idx] |= mask;
        } else {
            self.z[idx] &= !mask;
        }
    }

    #[inline]
    fn check_qubit(&self, q: usize) {
        assert!(q < self.n, "qubit index {q} out of range (n = {})", self.n);
    }

    /// Applies a Hadamard gate to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn h(&mut self, q: usize) {
        self.check_qubit(q);
        let word = q / WORD_BITS;
        let mask = 1u64 << (q % WORD_BITS);
        for row in 0..2 * self.n {
            let xi = row * self.words + word;
            let xv = self.x[xi] & mask;
            let zv = self.z[xi] & mask;
            // Phase flips when the row acts as Y on q.
            if xv != 0 && zv != 0 {
                self.r[row] = !self.r[row];
            }
            // Swap the x and z bits.
            self.x[xi] = (self.x[xi] & !mask) | zv;
            self.z[xi] = (self.z[xi] & !mask) | xv;
        }
    }

    /// Applies a phase gate `S = diag(1, i)` to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn s(&mut self, q: usize) {
        self.check_qubit(q);
        let word = q / WORD_BITS;
        let mask = 1u64 << (q % WORD_BITS);
        for row in 0..2 * self.n {
            let xi = row * self.words + word;
            let xv = self.x[xi] & mask;
            let zv = self.z[xi] & mask;
            if xv != 0 && zv != 0 {
                self.r[row] = !self.r[row];
            }
            // z ^= x
            self.z[xi] ^= xv;
        }
    }

    /// Applies the inverse phase gate `S† = S³`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn s_dagger(&mut self, q: usize) {
        self.s(q);
        self.s(q);
        self.s(q);
    }

    /// Applies a Pauli X (bit flip) to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn x(&mut self, q: usize) {
        self.check_qubit(q);
        for row in 0..2 * self.n {
            if self.get_z(row, q) {
                self.r[row] = !self.r[row];
            }
        }
    }

    /// Applies a Pauli Z (phase flip) to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn z(&mut self, q: usize) {
        self.check_qubit(q);
        for row in 0..2 * self.n {
            if self.get_x(row, q) {
                self.r[row] = !self.r[row];
            }
        }
    }

    /// Applies a Pauli Y to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn y(&mut self, q: usize) {
        self.check_qubit(q);
        for row in 0..2 * self.n {
            if self.get_x(row, q) != self.get_z(row, q) {
                self.r[row] = !self.r[row];
            }
        }
    }

    /// Applies a Pauli operator to qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn pauli(&mut self, q: usize, p: Pauli) {
        match p {
            Pauli::I => {}
            Pauli::X => self.x(q),
            Pauli::Y => self.y(q),
            Pauli::Z => self.z(q),
        }
    }

    /// Applies a whole Pauli string as an error/correction layer.
    ///
    /// # Panics
    ///
    /// Panics if the string length differs from the qubit count.
    pub fn pauli_string(&mut self, p: &PauliString) {
        assert_eq!(p.len(), self.n, "Pauli string length mismatch");
        for (q, op) in p.iter_support() {
            self.pauli(q, op);
        }
    }

    /// Applies a CNOT with control `c` and target `t`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `c == t`.
    pub fn cnot(&mut self, c: usize, t: usize) {
        self.check_qubit(c);
        self.check_qubit(t);
        assert_ne!(c, t, "CNOT control and target must differ");
        for row in 0..2 * self.n {
            let xc = self.get_x(row, c);
            let zc = self.get_z(row, c);
            let xt = self.get_x(row, t);
            let zt = self.get_z(row, t);
            if xc && zt && (xt == zc) {
                self.r[row] = !self.r[row];
            }
            self.set_x(row, t, xt ^ xc);
            self.set_z(row, c, zc ^ zt);
        }
    }

    /// Applies a controlled-Z between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Swaps qubits `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds or `a == b`.
    pub fn swap(&mut self, a: usize, b: usize) {
        self.cnot(a, b);
        self.cnot(b, a);
        self.cnot(a, b);
    }

    /// Measures qubit `q` in the computational (Z) basis.
    ///
    /// Random outcomes draw one bit from `rng`; deterministic outcomes draw
    /// nothing and report [`Measurement::deterministic`] = `true`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn measure<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Measurement {
        self.check_qubit(q);
        let n = self.n;
        // Look for a stabilizer row that anticommutes with Z_q (x bit set).
        let p = (n..2 * n).find(|&row| self.get_x(row, q));
        match p {
            Some(p) => {
                // Random outcome.
                for row in 0..2 * n {
                    if row != p && self.get_x(row, q) {
                        self.row_mul(row, p);
                    }
                }
                // Destabilizer p-n := old stabilizer p.
                self.copy_row(p - n, p);
                // Stabilizer p := ±Z_q with a fresh random sign.
                self.zero_row(p);
                self.set_z(p, q, true);
                let value: bool = rng.gen();
                self.r[p] = value;
                Measurement {
                    value,
                    deterministic: false,
                }
            }
            None => {
                // Deterministic outcome: accumulate into the scratch row.
                let scratch = 2 * n;
                self.zero_row(scratch);
                for i in 0..n {
                    if self.get_x(i, q) {
                        self.row_mul(scratch, i + n);
                    }
                }
                Measurement {
                    value: self.r[scratch],
                    deterministic: true,
                }
            }
        }
    }

    /// Measures qubit `q` in the X basis (conjugating by Hadamards).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn measure_x<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) -> Measurement {
        self.h(q);
        let m = self.measure(q, rng);
        self.h(q);
        m
    }

    /// Resets qubit `q` to `|0⟩` (measure, then flip if needed).
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn reset<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        if self.measure(q, rng).value {
            self.x(q);
        }
    }

    /// Resets qubit `q` to `|+⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn reset_plus<R: Rng + ?Sized>(&mut self, q: usize, rng: &mut R) {
        self.reset(q, rng);
        self.h(q);
    }

    /// Returns the probability that measuring qubit `q` yields 1, which for
    /// stabilizer states is always 0, ½, or 1.
    ///
    /// Unlike [`Tableau::measure`] this does not disturb the state.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of bounds.
    pub fn prob_one(&mut self, q: usize) -> f64 {
        self.check_qubit(q);
        let n = self.n;
        if (n..2 * n).any(|row| self.get_x(row, q)) {
            return 0.5;
        }
        let scratch = 2 * n;
        self.zero_row(scratch);
        for i in 0..n {
            if self.get_x(i, q) {
                self.row_mul(scratch, i + n);
            }
        }
        if self.r[scratch] {
            1.0
        } else {
            0.0
        }
    }

    /// Returns stabilizer `i` (for `i < n`) as a signed Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn stabilizer(&self, i: usize) -> PauliString {
        assert!(i < self.n, "stabilizer index out of range");
        self.row_to_pauli_string(self.n + i)
    }

    /// Returns destabilizer `i` (for `i < n`) as a signed Pauli string.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn destabilizer(&self, i: usize) -> PauliString {
        assert!(i < self.n, "destabilizer index out of range");
        self.row_to_pauli_string(i)
    }

    /// Returns `true` when the signed Pauli operator `p` stabilizes the
    /// current state (i.e. `p |ψ⟩ = |ψ⟩`).
    ///
    /// # Panics
    ///
    /// Panics if the string length differs from the qubit count.
    pub fn is_stabilized_by(&mut self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "Pauli string length mismatch");
        // p must commute with every stabilizer generator...
        for i in 0..self.n {
            if !self.stabilizer(i).commutes_with(p) {
                return false;
            }
        }
        // ...and be generated by them with matching sign. Reduce p against
        // the stabilizer set using destabilizer pivots: stabilizer row i is
        // the unique generator anticommuting with destabilizer i.
        let scratch = 2 * self.n;
        self.zero_row(scratch);
        self.r[scratch] = false;
        let mut acc = PauliString::identity(self.n);
        for i in 0..self.n {
            if !self.destabilizer(i).commutes_with(p) {
                self.row_mul(scratch, self.n + i);
                acc.mul_assign(&self.stabilizer(i));
            }
        }
        // The accumulated product must equal p exactly (including sign).
        for q in 0..self.n {
            if acc.get(q) != p.get(q) {
                return false;
            }
        }
        acc.is_negative() == p.is_negative()
    }

    fn row_to_pauli_string(&self, row: usize) -> PauliString {
        let mut p = PauliString::identity(self.n);
        for q in 0..self.n {
            p.set(q, Pauli::from_xz(self.get_x(row, q), self.get_z(row, q)));
        }
        if self.r[row] {
            p.negate();
        }
        p
    }

    fn zero_row(&mut self, row: usize) {
        for w in 0..self.words {
            self.x[row * self.words + w] = 0;
            self.z[row * self.words + w] = 0;
        }
        self.r[row] = false;
    }

    fn copy_row(&mut self, dst: usize, src: usize) {
        for w in 0..self.words {
            self.x[dst * self.words + w] = self.x[src * self.words + w];
            self.z[dst * self.words + w] = self.z[src * self.words + w];
        }
        self.r[dst] = self.r[src];
    }

    /// Multiplies row `src` into row `dst` (`dst := dst * src`), tracking the
    /// sign via the bit-parallel phase-exponent computation.
    fn row_mul(&mut self, dst: usize, src: usize) {
        let (mut plus, mut minus) = (0u32, 0u32);
        for w in 0..self.words {
            let x1 = self.x[dst * self.words + w];
            let z1 = self.z[dst * self.words + w];
            let x2 = self.x[src * self.words + w];
            let z2 = self.z[src * self.words + w];

            let y1 = x1 & z1;
            let xonly1 = x1 & !z1;
            let zonly1 = !x1 & z1;

            // Per-qubit contribution g(x1,z1,x2,z2) ∈ {−1, 0, +1}:
            //   row1 = Y: g = z2 − x2
            //   row1 = X: g = z2 · (2·x2 − 1)
            //   row1 = Z: g = x2 · (1 − 2·z2)
            let p = (y1 & z2 & !x2) | (xonly1 & z2 & x2) | (zonly1 & x2 & !z2);
            let m = (y1 & x2 & !z2) | (xonly1 & z2 & !x2) | (zonly1 & x2 & z2);
            plus += p.count_ones();
            minus += m.count_ones();

            self.x[dst * self.words + w] = x1 ^ x2;
            self.z[dst * self.words + w] = z1 ^ z2;
        }
        let phase = (2 * self.r[dst] as i64 + 2 * self.r[src] as i64 + plus as i64 - minus as i64)
            .rem_euclid(4);
        // Stabilizer and scratch rows always yield an even exponent (their
        // products are Hermitian); destabilizer rows may pick up an
        // irrelevant ±i during the random-measurement update, which we fold
        // into the sign bit exactly as Aaronson–Gottesman's CHP does.
        self.r[dst] = phase == 2 || phase == 3;
    }

    /// Checks internal invariants: stabilizers commute pairwise, destabilizer
    /// `i` anticommutes with stabilizer `i` only. Used by tests.
    #[doc(hidden)]
    pub fn check_invariants(&self) {
        for i in 0..self.n {
            for j in 0..self.n {
                let si = self.row_to_pauli_string(self.n + i);
                let sj = self.row_to_pauli_string(self.n + j);
                assert!(si.commutes_with(&sj), "stabilizers {i},{j} anticommute");
                let di = self.row_to_pauli_string(i);
                if i == j {
                    assert!(
                        !di.commutes_with(&sj),
                        "destabilizer {i} commutes with its stabilizer"
                    );
                } else {
                    assert!(
                        di.commutes_with(&sj),
                        "destabilizer {i} anticommutes with stabilizer {j}"
                    );
                }
            }
        }
    }

    /// Returns the X bit of stabilizer row `i` at qubit `q` (used by the
    /// surface-code crate's diagnostics).
    #[doc(hidden)]
    pub fn stabilizer_x_bit(&self, i: usize, q: usize) -> bool {
        self.get_x(self.n + i, q)
    }

    /// Words of the X component of stabilizer row `i` (diagnostics).
    #[doc(hidden)]
    pub fn stabilizer_x_words(&self, i: usize) -> &[u64] {
        self.xw(self.n + i)
    }

    /// Words of the Z component of stabilizer row `i` (diagnostics).
    #[doc(hidden)]
    pub fn stabilizer_z_words(&self, i: usize) -> &[u64] {
        self.zw(self.n + i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn fresh_state_measures_zero_deterministically() {
        let mut t = Tableau::new(5);
        let mut rng = rng();
        for q in 0..5 {
            let m = t.measure(q, &mut rng);
            assert!(!m.value);
            assert!(m.deterministic);
        }
    }

    #[test]
    fn x_flips_measurement() {
        let mut t = Tableau::new(3);
        let mut rng = rng();
        t.x(1);
        assert!(!t.measure(0, &mut rng).value);
        assert!(t.measure(1, &mut rng).value);
        assert!(!t.measure(2, &mut rng).value);
    }

    #[test]
    fn hadamard_gives_random_then_repeatable_outcome() {
        let mut rng = rng();
        let mut ones = 0;
        for seed in 0..64 {
            let mut t = Tableau::new(1);
            t.h(0);
            let mut local = StdRng::seed_from_u64(seed);
            let m1 = t.measure(0, &mut local);
            assert!(!m1.deterministic);
            // Second measurement must repeat the first, deterministically.
            let m2 = t.measure(0, &mut rng);
            assert!(m2.deterministic);
            assert_eq!(m1.value, m2.value);
            ones += m1.value as u32;
        }
        // Both outcomes occur across seeds.
        assert!(ones > 10 && ones < 54, "ones = {ones}");
    }

    #[test]
    fn bell_pair_is_correlated() {
        for seed in 0..32 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure(0, &mut rng);
            let b = t.measure(1, &mut rng);
            assert!(!a.deterministic);
            assert!(b.deterministic);
            assert_eq!(a.value, b.value);
        }
    }

    #[test]
    fn ghz_stabilizers() {
        let mut t = Tableau::new(3);
        t.h(0);
        t.cnot(0, 1);
        t.cnot(1, 2);
        // XXX stabilizes GHZ.
        let xxx = PauliString::from_sparse(3, &[(0, Pauli::X), (1, Pauli::X), (2, Pauli::X)]);
        assert!(t.is_stabilized_by(&xxx));
        // ZZI stabilizes GHZ.
        let zzi = PauliString::from_sparse(3, &[(0, Pauli::Z), (1, Pauli::Z)]);
        assert!(t.is_stabilized_by(&zzi));
        // ZII does not.
        let zii = PauliString::from_sparse(3, &[(0, Pauli::Z)]);
        assert!(!t.is_stabilized_by(&zii));
        // -XXX does not (wrong sign).
        let mut neg = xxx.clone();
        neg.negate();
        assert!(!t.is_stabilized_by(&neg));
    }

    #[test]
    fn s_gate_turns_x_into_y() {
        // S X S† = Y, so H then S gives a state stabilized by Y.
        let mut t = Tableau::new(1);
        t.h(0);
        t.s(0);
        let y = PauliString::from_sparse(1, &[(0, Pauli::Y)]);
        assert!(t.is_stabilized_by(&y));
    }

    #[test]
    fn s_dagger_inverts_s() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        let before = t.clone();
        t.s(1);
        t.s_dagger(1);
        assert_eq!(t, before);
    }

    #[test]
    fn cz_is_symmetric() {
        let mut a = Tableau::new(2);
        a.h(0);
        a.h(1);
        let mut b = a.clone();
        a.cz(0, 1);
        b.cz(1, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn swap_moves_excitation() {
        let mut t = Tableau::new(2);
        let mut rng = rng();
        t.x(0);
        t.swap(0, 1);
        assert!(!t.measure(0, &mut rng).value);
        assert!(t.measure(1, &mut rng).value);
    }

    #[test]
    fn reset_forces_zero() {
        for seed in 0..16 {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            t.reset(0, &mut rng);
            let m = t.measure(0, &mut rng);
            assert!(m.deterministic);
            assert!(!m.value);
        }
    }

    #[test]
    fn reset_plus_is_stabilized_by_x() {
        let mut rng = rng();
        let mut t = Tableau::new(1);
        t.x(0);
        t.reset_plus(0, &mut rng);
        let x = PauliString::from_sparse(1, &[(0, Pauli::X)]);
        assert!(t.is_stabilized_by(&x));
    }

    #[test]
    fn prob_one_reports_without_disturbing() {
        let mut t = Tableau::new(2);
        t.h(0);
        assert_eq!(t.prob_one(0), 0.5);
        assert_eq!(t.prob_one(1), 0.0);
        t.x(1);
        assert_eq!(t.prob_one(1), 1.0);
        // prob_one(0) did not collapse qubit 0.
        assert_eq!(t.prob_one(0), 0.5);
    }

    #[test]
    fn measure_x_detects_plus_state() {
        let mut rng = rng();
        let mut t = Tableau::new(1);
        t.h(0);
        let m = t.measure_x(0, &mut rng);
        assert!(m.deterministic);
        assert!(!m.value);
        t.z(0); // |+⟩ -> |−⟩
        let m = t.measure_x(0, &mut rng);
        assert!(m.deterministic);
        assert!(m.value);
    }

    #[test]
    fn invariants_hold_after_random_circuit() {
        let mut rng = rng();
        // 70 qubits forces multi-word rows.
        let mut t = Tableau::new(70);
        for step in 0..500 {
            match step % 5 {
                0 => t.h(rng.gen_range(0..70)),
                1 => t.s(rng.gen_range(0..70)),
                2 => {
                    let c = rng.gen_range(0..70);
                    let mut tq = rng.gen_range(0..70);
                    if tq == c {
                        tq = (tq + 1) % 70;
                    }
                    t.cnot(c, tq);
                }
                3 => t.x(rng.gen_range(0..70)),
                _ => {
                    let q = rng.gen_range(0..70);
                    t.measure(q, &mut rng);
                }
            }
        }
        t.check_invariants();
    }

    #[test]
    fn pauli_errors_commute_through_cnot_as_expected() {
        // X on control propagates to X on both qubits through CNOT.
        let mut rng = rng();
        let mut t = Tableau::new(2);
        t.x(0);
        t.cnot(0, 1);
        assert!(t.measure(0, &mut rng).value);
        assert!(t.measure(1, &mut rng).value);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_qubit_panics() {
        let mut t = Tableau::new(2);
        t.h(2);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn cnot_same_qubit_panics() {
        let mut t = Tableau::new(2);
        t.cnot(1, 1);
    }

    #[test]
    fn reset_all_restores_the_fresh_state() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut t = Tableau::new(3);
        t.h(0);
        t.cnot(0, 1);
        t.s(2);
        let _ = t.measure(0, &mut rng);
        t.reset_all();
        assert_eq!(t, Tableau::new(3));
        // A reused tableau behaves exactly like a fresh one.
        t.x(1);
        assert!(t.measure(1, &mut rng).value);
        assert!(!t.measure(0, &mut rng).value);
    }
}
