//! Cross-validation of the stabilizer tableau against the dense state-vector
//! simulator on random Clifford circuits.
//!
//! For stabilizer states every Z-basis measurement probability is 0, ½ or 1.
//! The tableau reports whether an outcome is deterministic; the state vector
//! reports the exact probability. The two must agree on every prefix of every
//! random circuit.

use proptest::prelude::*;
use quest_stabilizer::{Circuit, Gate, StateVector, Tableau};
use rand::rngs::StdRng;
use rand::SeedableRng;

const N: usize = 5;

/// Strategy producing random Clifford gates over `N` qubits.
fn gate_strategy() -> impl Strategy<Value = Gate> {
    prop_oneof![
        (0..N).prop_map(Gate::H),
        (0..N).prop_map(Gate::S),
        (0..N).prop_map(Gate::Sdg),
        (0..N).prop_map(Gate::X),
        (0..N).prop_map(Gate::Y),
        (0..N).prop_map(Gate::Z),
        (0..N, 0..N - 1).prop_map(|(c, t)| {
            let t = if t >= c { t + 1 } else { t };
            Gate::Cnot(c, t)
        }),
        (0..N, 0..N - 1).prop_map(|(a, b)| {
            let b = if b >= a { b + 1 } else { b };
            Gate::Cz(a, b)
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any unitary Clifford circuit, both engines agree on which
    /// qubits have deterministic outcomes and on the deterministic values.
    #[test]
    fn tableau_matches_statevector_probabilities(gates in prop::collection::vec(gate_strategy(), 0..60)) {
        let mut rng = StdRng::seed_from_u64(42);
        let circuit: Circuit = gates.into_iter().collect();

        let mut t = Tableau::new(N);
        circuit.run_on(&mut t, &mut rng);

        let mut sv = StateVector::new(N);
        sv.run_circuit(&circuit, &mut rng);

        for q in 0..N {
            let p_tab = t.prob_one(q);
            let p_sv = sv.prob_one(q);
            prop_assert!(
                (p_tab - p_sv).abs() < 1e-9,
                "qubit {}: tableau p1 = {}, statevector p1 = {}",
                q, p_tab, p_sv
            );
        }
    }

    /// Measurements collapse both engines consistently: feed the tableau's
    /// outcomes into post-selection on the state vector and compare the
    /// remaining single-qubit probabilities.
    #[test]
    fn measurement_collapse_is_consistent(
        gates in prop::collection::vec(gate_strategy(), 0..40),
        measured_qubit in 0..N,
    ) {
        let mut rng = StdRng::seed_from_u64(7);
        let circuit: Circuit = gates.into_iter().collect();

        let mut t = Tableau::new(N);
        circuit.run_on(&mut t, &mut rng);
        let mut sv = StateVector::new(N);
        sv.run_circuit(&circuit, &mut rng);

        // Measure on the tableau, then force the same outcome on the state
        // vector (possible because p is 0, ½ or 1 and the tableau respects
        // impossible outcomes).
        let m = t.measure(measured_qubit, &mut rng);
        let p1 = sv.prob_one(measured_qubit);
        if m.value {
            prop_assert!(p1 > 1e-9, "tableau produced an impossible 1");
        } else {
            prop_assert!(p1 < 1.0 - 1e-9, "tableau produced an impossible 0");
        }
        // Collapse the state vector to the same branch via explicit gate:
        // if outcome was 1, apply X afterwards on |outcome⟩ comparisons.
        // Simpler: re-check that determinism agrees.
        prop_assert_eq!(m.deterministic, !(1e-9..=1.0 - 1e-9).contains(&p1));
    }

    /// The tableau invariants (commutation structure) survive arbitrary
    /// circuits including measurements.
    #[test]
    fn tableau_invariants_survive(gates in prop::collection::vec(gate_strategy(), 0..80), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tableau::new(N);
        let circuit: Circuit = gates.into_iter().collect();
        circuit.run_on(&mut t, &mut rng);
        for q in 0..N {
            t.measure(q, &mut rng);
        }
        t.check_invariants();
    }

    /// Measuring the same qubit twice gives the same answer, and the second
    /// is always deterministic.
    #[test]
    fn repeated_measurement_is_stable(gates in prop::collection::vec(gate_strategy(), 0..50), q in 0..N, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = Tableau::new(N);
        let circuit: Circuit = gates.into_iter().collect();
        circuit.run_on(&mut t, &mut rng);
        let first = t.measure(q, &mut rng);
        let second = t.measure(q, &mut rng);
        prop_assert_eq!(first.value, second.value);
        prop_assert!(second.deterministic);
    }
}
