//! State-vector validation of the magic-state T-gadget.
//!
//! The architecture consumes distilled magic states via gate
//! teleportation: with an ancilla in `|A⟩ = (|0⟩ + e^{iπ/4}|1⟩)/√2`, a
//! CNOT from the data qubit and a measurement of the ancilla implement a
//! T gate up to a classically-controlled S correction. This is the
//! physical content of the ISA's `MagicInject`/`T` pair and the reason
//! T gates need one magic state each (§5.2).

use quest_stabilizer::StateVector;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Prepares a non-trivial single-qubit state on qubit `q`.
fn prepare_test_state(sv: &mut StateVector, q: usize) {
    sv.h(q);
    sv.t(q);
    sv.h(q);
    sv.s(q);
}

/// Runs the T-gadget on qubit 0 with ancilla qubit 1, returning the
/// post-gadget single-qubit state (ancilla measured out).
fn run_gadget(seed: u64) -> (StateVector, bool) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sv = StateVector::new(2);
    prepare_test_state(&mut sv, 0);
    // Magic ancilla |A⟩ = T H |0⟩.
    sv.h(1);
    sv.t(1);
    // Gadget: CNOT(data → ancilla), measure ancilla, S correction on 1.
    sv.cnot(0, 1);
    let m = sv.measure(1, &mut rng);
    if m {
        sv.s(0);
    }
    (sv, m)
}

/// Reference: the same input state with a direct T gate.
fn reference() -> StateVector {
    let mut sv = StateVector::new(2);
    prepare_test_state(&mut sv, 0);
    sv.t(0);
    sv
}

#[test]
fn t_gadget_implements_t_in_both_branches() {
    let target = reference();
    let mut saw = [false, false];
    for seed in 0..32 {
        let (got, m) = run_gadget(seed);
        saw[m as usize] = true;
        // Compare on the data qubit: fidelity with the reference (the
        // measured ancilla is |0⟩ or |1⟩; rebuild the reference with the
        // matching ancilla value).
        let mut reference_full = target.clone();
        if m {
            reference_full.x(1);
        }
        let f = got.fidelity(&reference_full);
        assert!(
            (f - 1.0).abs() < 1e-9,
            "branch m={m}: fidelity {f} (global phase aside, the gadget must equal T)"
        );
    }
    assert!(saw[0] && saw[1], "both measurement branches must occur");
}

#[test]
fn gadget_without_correction_is_wrong_in_the_one_branch() {
    // Drop the S correction: the m=1 branch must then disagree with T.
    let target = reference();
    let mut checked = false;
    for seed in 0..32 {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sv = StateVector::new(2);
        prepare_test_state(&mut sv, 0);
        sv.h(1);
        sv.t(1);
        sv.cnot(0, 1);
        let m = sv.measure(1, &mut rng);
        if !m {
            continue;
        }
        let mut reference_full = target.clone();
        reference_full.x(1);
        let f = sv.fidelity(&reference_full);
        assert!(f < 0.999, "uncorrected m=1 branch looked like T (f = {f})");
        checked = true;
    }
    assert!(checked, "never sampled the m=1 branch");
}

#[test]
fn two_gadgets_compose_to_s() {
    // T·T = S: run the gadget twice and compare with a direct S.
    let mut expected = StateVector::new(3);
    prepare_test_state(&mut expected, 0);
    expected.s(0);

    'seeds: for seed in 0..8 {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut sv = StateVector::new(3);
        prepare_test_state(&mut sv, 0);
        for anc in [1usize, 2] {
            sv.h(anc);
            sv.t(anc);
            sv.cnot(0, anc);
            let m = sv.measure(anc, &mut rng);
            if m {
                sv.s(0);
            }
            // Reset measured ancilla to |0⟩ for comparison.
            if m {
                sv.x(anc);
            }
        }
        let f = sv.fidelity(&expected);
        assert!((f - 1.0).abs() < 1e-9, "seed {seed}: fidelity {f}");
        continue 'seeds;
    }
}
