//! Space-time decoding graph.
//!
//! Surface-code decoding (Appendix A.2 of the paper) pairs up flipped
//! syndrome records over a window of space and time. Nodes of the decoding
//! graph are individual stabilizer measurements `(check, round)`; edges are
//! the elementary faults that flip exactly the two adjacent records:
//!
//! * **spatial** edges — a data-qubit error flips the two neighbouring
//!   checks of the matching type within a round (or one check and the
//!   boundary, for boundary data qubits);
//! * **temporal** edges — a measurement error flips the same check in two
//!   consecutive rounds.
//!
//! Decoders ([`crate::decoder`]) operate purely on this graph.

use crate::lattice::{RotatedLattice, StabKind};

/// Identifier of a decoding-graph node. Check nodes are
/// `round * num_checks + check`; the single boundary node is the last id.
pub type NodeId = usize;

/// Identifier of a decoding-graph edge (index into [`DecodingGraph::edges`]).
pub type EdgeId = usize;

/// The physical fault an edge represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Fault {
    /// An error on this data qubit (correction: flip this qubit).
    Data(usize),
    /// A measurement error on `check` between `round` and `round + 1`
    /// (no physical correction needed).
    Measurement {
        /// Check index within this graph's stabilizer type.
        check: usize,
        /// Earlier of the two affected rounds.
        round: usize,
    },
}

/// One edge of the decoding graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodingEdge {
    /// First endpoint.
    pub a: NodeId,
    /// Second endpoint (may be the boundary node).
    pub b: NodeId,
    /// Fault represented by the edge.
    pub fault: Fault,
}

/// Space-time decoding graph for one stabilizer type over a number of
/// detection rounds.
///
/// # Example
///
/// ```
/// use quest_surface::{DecodingGraph, RotatedLattice, StabKind};
///
/// let lat = RotatedLattice::new(3);
/// // Graph for decoding X errors (Z-type checks) across 3 rounds.
/// let g = DecodingGraph::new(&lat, StabKind::Z, 3);
/// assert_eq!(g.num_checks(), 4);
/// assert_eq!(g.rounds(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct DecodingGraph {
    kind: StabKind,
    rounds: usize,
    num_checks: usize,
    edges: Vec<DecodingEdge>,
    adjacency: Vec<Vec<EdgeId>>,
}

impl DecodingGraph {
    /// Builds the decoding graph for checks of type `kind` over `rounds`
    /// detection rounds (spatial + temporal edges: the phenomenological
    /// noise model).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn new(lattice: &RotatedLattice, kind: StabKind, rounds: usize) -> DecodingGraph {
        DecodingGraph::build(lattice, kind, rounds, false)
    }

    /// Builds the **circuit-level** decoding graph: additionally includes
    /// the space-time *diagonal* edges produced by mid-round data errors.
    /// An error striking a data qubit after its earlier-scheduled check's
    /// CNOT but before the later one's is seen by the late check this
    /// round and by the early check only next round — an elementary fault
    /// connecting `(t, late)` to `(t + 1, early)`. Without these edges a
    /// single circuit fault can cost the matcher two edges and defeat
    /// distance-3 codes (see the fault-injection tests).
    ///
    /// # Panics
    ///
    /// Panics if `rounds` is zero.
    pub fn with_diagonals(
        lattice: &RotatedLattice,
        kind: StabKind,
        rounds: usize,
    ) -> DecodingGraph {
        DecodingGraph::build(lattice, kind, rounds, true)
    }

    fn build(
        lattice: &RotatedLattice,
        kind: StabKind,
        rounds: usize,
        diagonals: bool,
    ) -> DecodingGraph {
        assert!(rounds > 0, "need at least one detection round");
        let checks: Vec<_> = lattice.plaquettes_of(kind).collect();
        let num_checks = checks.len();
        // Map each plaquette's ancilla to its check index.
        let check_of = |ancilla: usize| -> usize {
            checks
                .iter()
                .position(|p| p.ancilla == ancilla)
                .expect("ancilla is a check of this kind")
        };

        let boundary = rounds * num_checks;
        let mut edges = Vec::new();
        for t in 0..rounds {
            // Spatial / boundary edges: one per data qubit.
            for q in 0..lattice.num_data() {
                let owners = lattice.stabilizers_on(q, kind);
                match owners.as_slice() {
                    [p] => edges.push(DecodingEdge {
                        a: t * num_checks + check_of(p.ancilla),
                        b: boundary,
                        fault: Fault::Data(q),
                    }),
                    [p1, p2] => edges.push(DecodingEdge {
                        a: t * num_checks + check_of(p1.ancilla),
                        b: t * num_checks + check_of(p2.ancilla),
                        fault: Fault::Data(q),
                    }),
                    other => {
                        unreachable!("data qubit {q} is in {} {kind} stabilizers", other.len())
                    }
                }
            }
            // Temporal edges.
            if t + 1 < rounds {
                for c in 0..num_checks {
                    edges.push(DecodingEdge {
                        a: t * num_checks + c,
                        b: (t + 1) * num_checks + c,
                        fault: Fault::Measurement { check: c, round: t },
                    });
                }
            }
            // Diagonal edges: mid-round data errors between the two
            // owners' CNOT times.
            if diagonals && t + 1 < rounds {
                for q in 0..lattice.num_data() {
                    let owners = lattice.stabilizers_on(q, kind);
                    if let [p1, p2] = owners.as_slice() {
                        // Schedule layer in which each owner touches q.
                        let layer_of = |p: &crate::lattice::Plaquette| -> usize {
                            let corners = lattice.corners(p);
                            let corner = corners
                                .iter()
                                .position(|&c| c == Some(q))
                                .expect("owner contains q");
                            (0..4)
                                .find(|&l| crate::schedule::corner_for_layer(p.kind, l) == corner)
                                .expect("corner appears in the order")
                        };
                        let (early, late) = if layer_of(p1) < layer_of(p2) {
                            (p1, p2)
                        } else {
                            (p2, p1)
                        };
                        edges.push(DecodingEdge {
                            a: t * num_checks + check_of(late.ancilla),
                            b: (t + 1) * num_checks + check_of(early.ancilla),
                            fault: Fault::Data(q),
                        });
                    }
                }
            }
        }

        let mut adjacency = vec![Vec::new(); boundary + 1];
        for (i, e) in edges.iter().enumerate() {
            adjacency[e.a].push(i);
            adjacency[e.b].push(i);
        }

        DecodingGraph {
            kind,
            rounds,
            num_checks,
            edges,
            adjacency,
        }
    }

    /// Stabilizer type this graph decodes.
    pub fn kind(&self) -> StabKind {
        self.kind
    }

    /// Number of detection rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Number of checks (stabilizers of this type) per round.
    pub fn num_checks(&self) -> usize {
        self.num_checks
    }

    /// Total nodes including the boundary node.
    pub fn num_nodes(&self) -> usize {
        self.rounds * self.num_checks + 1
    }

    /// The boundary node id.
    pub fn boundary(&self) -> NodeId {
        self.rounds * self.num_checks
    }

    /// Returns `true` when `n` is the boundary node.
    pub fn is_boundary(&self, n: NodeId) -> bool {
        n == self.boundary()
    }

    /// Node id for check `c` at detection round `t`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn node(&self, t: usize, c: usize) -> NodeId {
        assert!(t < self.rounds && c < self.num_checks, "node out of range");
        t * self.num_checks + c
    }

    /// Inverse of [`DecodingGraph::node`]; `None` for the boundary.
    pub fn round_check(&self, n: NodeId) -> Option<(usize, usize)> {
        if self.is_boundary(n) {
            None
        } else {
            Some((n / self.num_checks, n % self.num_checks))
        }
    }

    /// All edges.
    pub fn edges(&self) -> &[DecodingEdge] {
        &self.edges
    }

    /// Edge ids incident to node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn incident(&self, n: NodeId) -> &[EdgeId] {
        &self.adjacency[n]
    }

    /// The endpoint of `e` other than `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is not an endpoint of `e`.
    pub fn other_end(&self, e: EdgeId, n: NodeId) -> NodeId {
        let edge = &self.edges[e];
        if edge.a == n {
            edge.b
        } else {
            assert_eq!(edge.b, n, "node {n} is not an endpoint of edge {e}");
            edge.a
        }
    }

    /// Unweighted shortest-path distance between two nodes (BFS), used by
    /// the exact matcher. Returns `usize::MAX` if disconnected.
    pub fn distance(&self, from: NodeId, to: NodeId) -> usize {
        self.shortest_path(from, to).map_or(usize::MAX, |p| p.len())
    }

    /// Unweighted shortest path between two nodes as a list of edge ids, or
    /// `None` if disconnected.
    pub fn shortest_path(&self, from: NodeId, to: NodeId) -> Option<Vec<EdgeId>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; self.num_nodes()];
        let mut visited = vec![false; self.num_nodes()];
        let mut queue = std::collections::VecDeque::new();
        visited[from] = true;
        queue.push_back(from);
        while let Some(u) = queue.pop_front() {
            for &e in self.incident(u) {
                let v = self.other_end(e, u);
                if !visited[v] {
                    visited[v] = true;
                    parent_edge[v] = Some(e);
                    if v == to {
                        // Reconstruct.
                        let mut path = Vec::new();
                        let mut cur = to;
                        while cur != from {
                            let pe = parent_edge[cur].expect("path exists");
                            path.push(pe);
                            cur = self.other_end(pe, cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_single_round_graph_shape() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        assert_eq!(g.num_checks(), 4);
        // One spatial/boundary edge per data qubit, no temporal edges.
        assert_eq!(g.edges().len(), 9);
        let boundary_edges = g
            .edges()
            .iter()
            .filter(|e| e.b == g.boundary() || e.a == g.boundary())
            .count();
        // d=3: data qubits with exactly one Z stabilizer.
        let expected_boundary = (0..9)
            .filter(|&q| lat.stabilizers_on(q, StabKind::Z).len() == 1)
            .count();
        assert_eq!(boundary_edges, expected_boundary);
    }

    #[test]
    fn temporal_edges_connect_consecutive_rounds() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let temporal: Vec<_> = g
            .edges()
            .iter()
            .filter(|e| matches!(e.fault, Fault::Measurement { .. }))
            .collect();
        assert_eq!(temporal.len(), 4 * 2);
        for e in temporal {
            let (ta, ca) = g.round_check(e.a).unwrap();
            let (tb, cb) = g.round_check(e.b).unwrap();
            assert_eq!(ca, cb);
            assert_eq!(tb, ta + 1);
        }
    }

    #[test]
    fn graph_is_connected() {
        for d in [3, 5] {
            let lat = RotatedLattice::new(d);
            for kind in [StabKind::X, StabKind::Z] {
                let g = DecodingGraph::new(&lat, kind, 2);
                for n in 0..g.num_nodes() - 1 {
                    assert_ne!(g.distance(n, g.boundary()), usize::MAX);
                }
            }
        }
    }

    #[test]
    fn shortest_path_has_consistent_length() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 2);
        let a = g.node(0, 0);
        let b = g.node(1, g.num_checks() - 1);
        let path = g.shortest_path(a, b).unwrap();
        assert_eq!(path.len(), g.distance(a, b));
        // Walk the path and confirm it lands on b.
        let mut cur = a;
        for &e in &path {
            cur = g.other_end(e, cur);
        }
        assert_eq!(cur, b);
    }

    #[test]
    fn boundary_distance_is_small_for_edge_checks() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        // Every Z check in d=3 borders the boundary through some data qubit.
        for c in 0..g.num_checks() {
            assert_eq!(g.distance(g.node(0, c), g.boundary()), 1);
        }
    }

    #[test]
    fn diagonal_graph_adds_one_edge_per_bulk_data_qubit_per_step() {
        let lat = RotatedLattice::new(5);
        let plain = DecodingGraph::new(&lat, StabKind::Z, 3);
        let diag = DecodingGraph::with_diagonals(&lat, StabKind::Z, 3);
        let bulk_data = (0..lat.num_data())
            .filter(|&q| lat.stabilizers_on(q, StabKind::Z).len() == 2)
            .count();
        assert_eq!(
            diag.edges().len(),
            plain.edges().len() + 2 * bulk_data,
            "one diagonal per bulk data qubit per round transition"
        );
    }

    #[test]
    fn diagonal_edges_cross_rounds_with_data_faults() {
        // Diagonals are exactly the data-fault edges whose endpoints are
        // checks in *different* rounds.
        let lat = RotatedLattice::new(3);
        let diag = DecodingGraph::with_diagonals(&lat, StabKind::Z, 2);
        let diagonals: Vec<_> = diag
            .edges()
            .iter()
            .filter(|e| {
                matches!(e.fault, Fault::Data(_))
                    && !diag.is_boundary(e.a)
                    && !diag.is_boundary(e.b)
                    && diag.round_check(e.a).unwrap().0 != diag.round_check(e.b).unwrap().0
            })
            .collect();
        assert!(!diagonals.is_empty());
        for e in diagonals {
            let (ta, ca) = diag.round_check(e.a).unwrap();
            let (tb, cb) = diag.round_check(e.b).unwrap();
            assert_eq!(tb, ta + 1, "diagonals span consecutive rounds");
            assert_ne!(ca, cb, "diagonals connect different checks");
        }
    }

    #[test]
    fn single_round_diagonal_graph_equals_plain() {
        let lat = RotatedLattice::new(3);
        let plain = DecodingGraph::new(&lat, StabKind::Z, 1);
        let diag = DecodingGraph::with_diagonals(&lat, StabKind::Z, 1);
        assert_eq!(plain.edges().len(), diag.edges().len());
    }

    #[test]
    fn node_round_check_round_trips() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::X, 4);
        for t in 0..4 {
            for c in 0..g.num_checks() {
                assert_eq!(g.round_check(g.node(t, c)), Some((t, c)));
            }
        }
        assert_eq!(g.round_check(g.boundary()), None);
    }
}
