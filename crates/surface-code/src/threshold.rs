//! Threshold estimation: sweep physical error rate × code distance and
//! locate the crossing point below which larger codes win.
//!
//! The existence of a threshold is the premise of the entire paper — the
//! reason adding physical qubits (and hence instruction bandwidth)
//! suppresses logical errors at all. This harness measures logical error
//! rates over a grid and reports the empirical crossing between
//! consecutive distances.

use crate::decoder::Decoder;
use crate::memory::{MemoryBasis, MemoryExperiment, MemoryNoise};
use crate::sampler::{EarlyExit, FrameSampler, SamplerConfig};
use quest_stabilizer::frame::{block_seed, LaneWidth};
use rand::Rng;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Knobs of a configured batch sweep (see
/// [`ThresholdSweep::run_batch_configured`]).
#[derive(Debug, Clone, Copy)]
pub struct SweepConfig {
    /// Frame-plane lane width; sweep results are width-invariant.
    pub width: LaneWidth,
    /// Optional deterministic per-point early exit. Points stopped early
    /// report their actual shot count in [`ThresholdPoint::shots`].
    pub early_exit: Option<EarlyExit>,
    /// OS threads grid points are fanned out over (results are
    /// worker-invariant).
    pub workers: usize,
}

impl Default for SweepConfig {
    fn default() -> SweepConfig {
        SweepConfig {
            width: LaneWidth::default(),
            early_exit: None,
            workers: 1,
        }
    }
}

/// One grid point of a threshold sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThresholdPoint {
    /// Code distance.
    pub distance: usize,
    /// Physical error rate.
    pub p: f64,
    /// Measured logical error rate.
    pub logical_rate: f64,
    /// Shots used.
    pub shots: usize,
}

/// Result of a full sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ThresholdSweep {
    /// All measured points, ordered by (distance, p).
    pub points: Vec<ThresholdPoint>,
}

impl ThresholdSweep {
    /// Runs a code-capacity sweep over `distances` × `error_rates` with
    /// `shots` shots per point, using `rounds = d` noisy rounds.
    pub fn run<D: Decoder, R: Rng + ?Sized>(
        distances: &[usize],
        error_rates: &[f64],
        shots: usize,
        decoder: &D,
        rng: &mut R,
    ) -> ThresholdSweep {
        let mut points = Vec::new();
        for &d in distances {
            let exp = MemoryExperiment::new(d, d, MemoryBasis::Z);
            for &p in error_rates {
                let noise = MemoryNoise::code_capacity(p);
                let rate = exp.logical_error_rate(&noise, decoder, shots, rng);
                points.push(ThresholdPoint {
                    distance: d,
                    p,
                    logical_rate: rate,
                    shots,
                });
            }
        }
        ThresholdSweep { points }
    }

    /// Runs a code-capacity sweep on the bit-parallel frame fast path
    /// (see [`crate::FrameSampler`]), optionally fanning grid points out
    /// over `workers` OS threads with `std::thread::scope` — no thread
    /// pool, no extra dependencies, mirroring the runtime's sharding
    /// style.
    ///
    /// Deterministic by construction: every grid point draws from its own
    /// RNG stream derived from `(seed, canonical point index)`, work is
    /// claimed from an atomic counter, and results are written into their
    /// canonical `(distance, p)` slot — so the output is bit-identical
    /// for any `workers ≥ 1` and equals the single-threaded run.
    ///
    /// # Panics
    ///
    /// Panics if `workers` is zero.
    pub fn run_batch<D: Decoder + Sync>(
        distances: &[usize],
        error_rates: &[f64],
        shots: usize,
        decoder: &D,
        seed: u64,
        workers: usize,
    ) -> ThresholdSweep {
        let cfg = SweepConfig {
            workers,
            ..SweepConfig::default()
        };
        ThresholdSweep::run_batch_configured(distances, error_rates, shots, decoder, seed, &cfg)
    }

    /// [`ThresholdSweep::run_batch`] with explicit lane-width and
    /// early-exit knobs. The sweep stays a pure function of
    /// `(grid, shots, seed, early_exit)`: lane width and worker count
    /// never change any point, and the early-exit decision is evaluated
    /// per point from deterministic tallies at fixed milestones — so an
    /// early-exited sweep equals the full sweep truncated per point.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.workers` is zero.
    pub fn run_batch_configured<D: Decoder + Sync>(
        distances: &[usize],
        error_rates: &[f64],
        shots: usize,
        decoder: &D,
        seed: u64,
        cfg: &SweepConfig,
    ) -> ThresholdSweep {
        assert!(cfg.workers > 0, "need at least one worker");
        let workers = cfg.workers;
        let sampler_cfg = SamplerConfig {
            width: cfg.width,
            early_exit: cfg.early_exit,
            ..SamplerConfig::default()
        };
        // Canonical grid in (distance, p) order; each point gets an
        // independent master seed from its canonical index.
        let grid: Vec<(usize, f64)> = distances
            .iter()
            .flat_map(|&d| error_rates.iter().map(move |&p| (d, p)))
            .collect();
        // Compile (and reference-verify) one sampler per distance instead
        // of per point: the sampler is noise-independent, and its one-time
        // tableau verification is a visible fraction of a fast sweep.
        let samplers: Vec<FrameSampler> = distances
            .iter()
            .map(|&d| FrameSampler::new(&MemoryExperiment::new(d, d, MemoryBasis::Z)))
            .collect();
        let run_point = |i: usize| -> ThresholdPoint {
            let (d, p) = grid[i];
            let noise = MemoryNoise::code_capacity(p);
            let out = samplers[i / error_rates.len()].run_batch_configured(
                &noise,
                decoder,
                shots,
                block_seed(seed, i as u64),
                &sampler_cfg,
            );
            ThresholdPoint {
                distance: d,
                p,
                logical_rate: out.logical_error_rate(),
                shots: out.shots,
            }
        };

        let mut points: Vec<Option<ThresholdPoint>> = vec![None; grid.len()];
        if workers == 1 {
            for (i, slot) in points.iter_mut().enumerate() {
                *slot = Some(run_point(i));
            }
        } else {
            let next = AtomicUsize::new(0);
            let results = Mutex::new(&mut points);
            std::thread::scope(|scope| {
                for _ in 0..workers.min(grid.len()) {
                    scope.spawn(|| loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= grid.len() {
                            break;
                        }
                        let pt = run_point(i);
                        if let Ok(mut slots) = results.lock() {
                            slots[i] = Some(pt);
                        }
                    });
                }
            });
        }
        ThresholdSweep {
            points: points.into_iter().flatten().collect(),
        }
    }

    /// Points for one distance, ordered by error rate.
    pub fn series(&self, distance: usize) -> Vec<ThresholdPoint> {
        self.points
            .iter()
            .filter(|pt| pt.distance == distance)
            .copied()
            .collect()
    }

    /// The largest swept error rate at which the bigger code is at least
    /// as good as the smaller one — an empirical lower bound on the
    /// threshold between the two distances. `None` if the bigger code
    /// never wins on the grid.
    pub fn crossing_below(&self, d_small: usize, d_large: usize) -> Option<f64> {
        let small = self.series(d_small);
        let large = self.series(d_large);
        small
            .iter()
            .zip(&large)
            .filter(|(s, l)| l.logical_rate <= s.logical_rate)
            .map(|(s, _)| s.p)
            .fold(None, |acc: Option<f64>, p| {
                Some(acc.map_or(p, |a| a.max(p)))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::UnionFindDecoder;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sweep_shapes_are_complete() {
        let mut rng = StdRng::seed_from_u64(8);
        let sweep = ThresholdSweep::run(
            &[3, 5],
            &[5e-3, 2e-2],
            40,
            &UnionFindDecoder::new(),
            &mut rng,
        );
        assert_eq!(sweep.points.len(), 4);
        assert_eq!(sweep.series(3).len(), 2);
        assert_eq!(sweep.series(5).len(), 2);
    }

    #[test]
    fn logical_rate_increases_with_p() {
        let mut rng = StdRng::seed_from_u64(9);
        let sweep =
            ThresholdSweep::run(&[3], &[2e-3, 5e-2], 300, &UnionFindDecoder::new(), &mut rng);
        let s = sweep.series(3);
        assert!(
            s[0].logical_rate <= s[1].logical_rate,
            "{} vs {}",
            s[0].logical_rate,
            s[1].logical_rate
        );
    }

    #[test]
    fn d5_beats_d3_well_below_threshold() {
        let mut rng = StdRng::seed_from_u64(10);
        let sweep = ThresholdSweep::run(&[3, 5], &[4e-3], 400, &UnionFindDecoder::new(), &mut rng);
        let crossing = sweep.crossing_below(3, 5);
        assert_eq!(crossing, Some(4e-3), "d=5 must win at p=4e-3");
    }
}
