//! Logical-memory experiments: the end-to-end QECC loop.
//!
//! A memory experiment prepares a logical basis state, runs `T` noisy
//! syndrome-extraction rounds (the continuous loop of Figure 5 in the
//! paper), decodes the space-time syndrome record, applies the correction
//! and checks whether the logical observable survived. Sweeping the physical
//! error rate and code distance demonstrates the error suppression that the
//! whole QuEST architecture exists to sustain.

use crate::decoder::Decoder;
use crate::graph::{DecodingGraph, NodeId};
use crate::lattice::{RotatedLattice, StabKind};
use crate::sampler::{BatchOutcome, FrameSampler, SamplerConfig};
use crate::schedule::SyndromeCircuit;
use quest_stabilizer::{NoiseChannel, Pauli, PauliChannel, Tableau};
use rand::Rng;

/// Which logical basis state the experiment protects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryBasis {
    /// Protect logical `|0⟩` (decode X errors via Z-type checks).
    Z,
    /// Protect logical `|+⟩` (decode Z errors via X-type checks).
    X,
}

impl MemoryBasis {
    /// The stabilizer type whose syndrome record is decoded.
    pub fn check_kind(self) -> StabKind {
        match self {
            MemoryBasis::Z => StabKind::Z,
            MemoryBasis::X => StabKind::X,
        }
    }
}

/// Noise model for one experiment: data-qubit channel applied before every
/// round plus a classical syndrome-measurement flip probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryNoise {
    /// Per-round, per-data-qubit Pauli channel.
    pub data: PauliChannel,
    /// Probability that a syndrome measurement bit is reported flipped.
    pub measurement_flip: f64,
}

impl MemoryNoise {
    /// Standard phenomenological noise: depolarizing data errors with total
    /// probability `p` and measurement flips with the same probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn phenomenological(p: f64) -> MemoryNoise {
        MemoryNoise {
            data: PauliChannel::depolarizing(p),
            measurement_flip: p,
        }
    }

    /// Code-capacity noise: data errors only, perfect measurements.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn code_capacity(p: f64) -> MemoryNoise {
        MemoryNoise {
            data: PauliChannel::depolarizing(p),
            measurement_flip: 0.0,
        }
    }

    /// No noise at all.
    pub fn noiseless() -> MemoryNoise {
        MemoryNoise {
            data: PauliChannel::noiseless(),
            measurement_flip: 0.0,
        }
    }
}

/// Result of one memory-experiment shot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryOutcome {
    /// `true` when the decoded logical observable was flipped (failure).
    pub logical_error: bool,
    /// Total detection events observed.
    pub detection_events: usize,
    /// Data-qubit flips applied by the decoder.
    pub correction_weight: usize,
}

/// A configured logical-memory experiment.
///
/// # Example
///
/// ```
/// use quest_surface::{MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder};
/// use quest_stabilizer::{SeedableRng, StdRng};
///
/// let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
/// let mut rng = StdRng::seed_from_u64(1);
/// let out = exp.run(&MemoryNoise::noiseless(), &UnionFindDecoder::new(), &mut rng);
/// assert!(!out.logical_error);
/// assert_eq!(out.detection_events, 0);
/// ```
#[derive(Debug, Clone)]
pub struct MemoryExperiment {
    lattice: RotatedLattice,
    circuit: SyndromeCircuit,
    rounds: usize,
    basis: MemoryBasis,
}

impl MemoryExperiment {
    /// Builds an experiment at distance `d` with `rounds` noisy QECC rounds.
    ///
    /// # Panics
    ///
    /// Panics if `d` is invalid (see [`RotatedLattice::new`]) or `rounds`
    /// is zero.
    pub fn new(d: usize, rounds: usize, basis: MemoryBasis) -> MemoryExperiment {
        assert!(rounds > 0, "need at least one round");
        let lattice = RotatedLattice::new(d);
        let circuit = SyndromeCircuit::new(&lattice);
        MemoryExperiment {
            lattice,
            circuit,
            rounds,
            basis,
        }
    }

    /// The lattice under test.
    pub fn lattice(&self) -> &RotatedLattice {
        &self.lattice
    }

    /// Number of noisy rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// The protected logical basis.
    pub fn basis(&self) -> MemoryBasis {
        self.basis
    }

    /// The compiled per-round syndrome-extraction circuit.
    pub fn syndrome_circuit(&self) -> &SyndromeCircuit {
        &self.circuit
    }

    /// The decoding graph this experiment decodes over (`rounds + 1`
    /// detection rounds: the noisy rounds plus the final perfect readout).
    pub fn decoding_graph(&self) -> DecodingGraph {
        DecodingGraph::new(&self.lattice, self.basis.check_kind(), self.rounds + 1)
    }

    /// Runs one shot.
    pub fn run<D: Decoder, R: Rng + ?Sized>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        rng: &mut R,
    ) -> MemoryOutcome {
        self.run_with_injection(noise, None, decoder, rng)
    }

    /// Runs one shot with a deterministic Pauli error injected before the
    /// first round, in addition to (usually instead of) stochastic noise.
    /// Used for failure-injection tests: a distance-`d` code must correct
    /// every error of weight ≤ ⌊(d−1)/2⌋.
    ///
    /// # Panics
    ///
    /// Panics if the injected string's length differs from the total qubit
    /// count of the lattice.
    pub fn run_with_injection<D: Decoder, R: Rng + ?Sized>(
        &self,
        noise: &MemoryNoise,
        inject: Option<&quest_stabilizer::PauliString>,
        decoder: &D,
        rng: &mut R,
    ) -> MemoryOutcome {
        let mut t = Tableau::new(self.lattice.num_qubits());
        let mut records = Vec::new();
        self.run_core(
            &mut t,
            &mut records,
            noise,
            inject,
            decoder,
            &self.decoding_graph(),
            rng,
        )
    }

    /// One shot against caller-provided scratch: `t` must hold `|0…0⟩`
    /// (fresh or [`Tableau::reset_all`]), `records` is reused round
    /// storage, `graph` the experiment's decoding graph. This is the body
    /// of [`MemoryExperiment::run_with_injection`], split out so the
    /// multi-shot loops reuse one tableau, one graph and one record buffer
    /// across shots instead of reallocating them per shot.
    #[allow(clippy::too_many_arguments)]
    fn run_core<D: Decoder, R: Rng + ?Sized>(
        &self,
        t: &mut Tableau,
        records: &mut Vec<Vec<bool>>,
        noise: &MemoryNoise,
        inject: Option<&quest_stabilizer::PauliString>,
        decoder: &D,
        graph: &DecodingGraph,
        rng: &mut R,
    ) -> MemoryOutcome {
        let lat = &self.lattice;
        let kind = self.basis.check_kind();
        let num_data = lat.num_data();

        // Logical state preparation. |0…0⟩ is logical |0⟩; transversal H
        // does not map the rotated code onto itself, so prepare |+…+⟩ for
        // the X basis instead (a +1 eigenstate of every X stabilizer and of
        // logical X).
        if self.basis == MemoryBasis::X {
            for q in 0..num_data {
                t.h(q);
            }
        }

        if let Some(p) = inject {
            t.pauli_string(p);
        }

        // Noisy syndrome rounds. The outer record buffer (and each round's
        // inner vector) is reused across shots.
        records.resize(self.rounds, Vec::new());
        for round in records.iter_mut() {
            // Data noise layer.
            for q in 0..num_data {
                let e = noise.data.sample(rng);
                t.pauli(q, e);
            }
            let syn = self.circuit.run_round(t, rng);
            round.clear();
            round.extend_from_slice(syn.of(kind));
            // Classical measurement flips.
            for b in round.iter_mut() {
                if noise.measurement_flip > 0.0 && rng.gen::<f64>() < noise.measurement_flip {
                    *b = !*b;
                }
            }
        }

        // Final perfect readout of all data qubits in the memory basis.
        let data_bits: Vec<bool> = (0..num_data)
            .map(|q| match self.basis {
                MemoryBasis::Z => t.measure(q, rng).value,
                MemoryBasis::X => t.measure_x(q, rng).value,
            })
            .collect();
        // Derive the final round of check values classically.
        let final_checks: Vec<bool> = lat
            .plaquettes_of(kind)
            .map(|p| p.data.iter().fold(false, |acc, &q| acc ^ data_bits[q]))
            .collect();

        self.decode_and_judge(records, &final_checks, data_bits, decoder, graph)
    }

    /// Shared back half of every shot: difference the syndrome records
    /// into detection events (all-zero reference), decode over `graph`,
    /// apply the correction to the transversal readout, and judge the
    /// logical observable.
    /// Differences syndrome records against the all-zero reference into
    /// detection-event nodes, in ascending `(round, check)` order — the
    /// same order the frame sampler emits.
    fn events_from_records(
        &self,
        records: &[Vec<bool>],
        final_checks: &[bool],
        graph: &DecodingGraph,
    ) -> Vec<NodeId> {
        let num_checks = graph.num_checks();
        debug_assert_eq!(num_checks, records[0].len());
        let mut events = Vec::new();
        for (t_idx, rec) in records.iter().enumerate() {
            for c in 0..num_checks {
                let prev = if t_idx == 0 {
                    false
                } else {
                    records[t_idx - 1][c]
                };
                if rec[c] != prev {
                    events.push(graph.node(t_idx, c));
                }
            }
        }
        for c in 0..num_checks {
            if final_checks[c] != records[self.rounds - 1][c] {
                events.push(graph.node(self.rounds, c));
            }
        }
        events
    }

    fn decode_and_judge<D: Decoder>(
        &self,
        records: &[Vec<bool>],
        final_checks: &[bool],
        data_bits: Vec<bool>,
        decoder: &D,
        graph: &DecodingGraph,
    ) -> MemoryOutcome {
        let lat = &self.lattice;
        let events = self.events_from_records(records, final_checks, graph);

        // Decode and apply the correction to the classical readout.
        let correction = decoder.decode(graph, &events);
        let mut corrected = data_bits;
        for &q in &correction.data_flips {
            corrected[q] = !corrected[q];
        }

        // Logical observable parity.
        let logical_error = match self.basis {
            MemoryBasis::Z => (0..lat.distance())
                .map(|col| corrected[lat.data_index(0, col)])
                .fold(false, |acc, b| acc ^ b),
            MemoryBasis::X => (0..lat.distance())
                .map(|row| corrected[lat.data_index(row, 0)])
                .fold(false, |acc, b| acc ^ b),
        };

        MemoryOutcome {
            logical_error,
            detection_events: events.len(),
            correction_weight: correction.weight(),
        }
    }

    /// Runs one shot under **circuit-level** noise (every gate location of
    /// the syndrome circuit can fail; see
    /// [`crate::schedule::CircuitNoise`]). Only meaningful for the Z
    /// basis, where the final transversal readout remains noiseless by
    /// convention (the standard memory-experiment protocol).
    pub fn run_circuit_level<D: Decoder, R: Rng + ?Sized>(
        &self,
        noise: &crate::schedule::CircuitNoise,
        decoder: &D,
        rng: &mut R,
    ) -> MemoryOutcome {
        let lat = &self.lattice;
        let kind = self.basis.check_kind();
        let num_data = lat.num_data();
        let mut t = Tableau::new(lat.num_qubits());
        if self.basis == MemoryBasis::X {
            for q in 0..num_data {
                t.h(q);
            }
        }

        let mut records: Vec<Vec<bool>> = Vec::with_capacity(self.rounds);
        for _ in 0..self.rounds {
            let syn = self
                .circuit
                .run_round_with_circuit_noise(&mut t, noise, rng);
            records.push(syn.of(kind).to_vec());
        }

        let data_bits: Vec<bool> = (0..num_data)
            .map(|q| match self.basis {
                MemoryBasis::Z => t.measure(q, rng).value,
                MemoryBasis::X => t.measure_x(q, rng).value,
            })
            .collect();
        let final_checks: Vec<bool> = lat
            .plaquettes_of(kind)
            .map(|p| p.data.iter().fold(false, |acc, &q| acc ^ data_bits[q]))
            .collect();

        let graph =
            DecodingGraph::with_diagonals(&self.lattice, self.basis.check_kind(), self.rounds + 1);
        self.decode_and_judge(&records, &final_checks, data_bits, decoder, &graph)
    }

    /// Logical error rate over `shots` runs.
    ///
    /// One tableau, one decoding graph and one record buffer are shared
    /// across all shots ([`Tableau::reset_all`] between shots) — the
    /// per-shot cost is simulation and decoding, not allocation.
    pub fn logical_error_rate<D: Decoder, R: Rng + ?Sized>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        rng: &mut R,
    ) -> f64 {
        let graph = self.decoding_graph();
        let mut t = Tableau::new(self.lattice.num_qubits());
        let mut records: Vec<Vec<bool>> = Vec::new();
        let mut failures = 0usize;
        for shot in 0..shots {
            if shot > 0 {
                t.reset_all();
            }
            let out = self.run_core(&mut t, &mut records, noise, None, decoder, &graph, rng);
            if out.logical_error {
                failures += 1;
            }
        }
        failures as f64 / shots as f64
    }

    /// Runs `shots` shots through the bit-parallel Pauli-frame fast path
    /// (see [`FrameSampler`]): the syndrome circuit is compiled once, 64
    /// shots propagate per machine word, and only the decoder runs
    /// per-shot. Statistically identical to looping [`MemoryExperiment::run`]
    /// — and *bit-identical* in its detection events for any fixed error
    /// pattern (see the frame-equivalence tests) — but orders of magnitude
    /// faster. Deterministic in `seed` alone.
    pub fn run_batch<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
    ) -> BatchOutcome {
        FrameSampler::new(self).run_batch(noise, decoder, shots, seed)
    }

    /// [`MemoryExperiment::run_batch`] with explicit sampler knobs (lane
    /// width, chunk size, early exit). Outcomes are invariant in the lane
    /// width and chunk size; an early exit may stop at a milestone short
    /// of `shots` (reported in [`BatchOutcome::shots`]).
    pub fn run_batch_configured<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
        cfg: &SamplerConfig,
    ) -> BatchOutcome {
        FrameSampler::new(self).run_batch_configured(noise, decoder, shots, seed, cfg)
    }

    /// Logical error rate over `shots` frame-sampled shots (the batch
    /// counterpart of [`MemoryExperiment::logical_error_rate`]).
    pub fn logical_error_rate_batch<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
    ) -> f64 {
        self.run_batch(noise, decoder, shots, seed)
            .logical_error_rate()
    }

    /// Runs one shot on the tableau path with an **explicit** fault
    /// pattern — `errors_per_round[t][q]` is XORed onto data qubit `q`
    /// before round `t`, and `meas_flips_per_round[t][c]` flips monitored
    /// check `c`'s record in round `t` — and returns the raw detection
    /// events plus the uncorrected logical readout parity. This is the
    /// ground-truth side of the frame-equivalence tests: for the same
    /// fault pattern, [`FrameSampler::faulted_shot_events`] must return
    /// bit-for-bit identical output.
    ///
    /// # Panics
    ///
    /// Panics if the fault pattern's shape does not match
    /// (`rounds` × `num_data` errors, `rounds` × `num_checks` flips).
    pub fn faulted_shot_events<R: Rng + ?Sized>(
        &self,
        errors_per_round: &[Vec<Pauli>],
        meas_flips_per_round: &[Vec<bool>],
        rng: &mut R,
    ) -> (Vec<NodeId>, bool) {
        let lat = &self.lattice;
        let kind = self.basis.check_kind();
        let num_data = lat.num_data();
        assert_eq!(
            errors_per_round.len(),
            self.rounds,
            "one error layer per round"
        );
        assert_eq!(
            meas_flips_per_round.len(),
            self.rounds,
            "one flip layer per round"
        );

        let mut t = Tableau::new(lat.num_qubits());
        if self.basis == MemoryBasis::X {
            for q in 0..num_data {
                t.h(q);
            }
        }
        let mut records: Vec<Vec<bool>> = Vec::with_capacity(self.rounds);
        for (errors, flips) in errors_per_round.iter().zip(meas_flips_per_round) {
            assert_eq!(errors.len(), num_data, "one Pauli per data qubit");
            for (q, &e) in errors.iter().enumerate() {
                t.pauli(q, e);
            }
            let syn = self.circuit.run_round(&mut t, rng);
            let mut bits = syn.of(kind).to_vec();
            assert_eq!(flips.len(), bits.len(), "one flip bit per check");
            for (b, &f) in bits.iter_mut().zip(flips) {
                *b ^= f;
            }
            records.push(bits);
        }

        let data_bits: Vec<bool> = (0..num_data)
            .map(|q| match self.basis {
                MemoryBasis::Z => t.measure(q, rng).value,
                MemoryBasis::X => t.measure_x(q, rng).value,
            })
            .collect();
        let final_checks: Vec<bool> = lat
            .plaquettes_of(kind)
            .map(|p| p.data.iter().fold(false, |acc, &q| acc ^ data_bits[q]))
            .collect();

        let graph = self.decoding_graph();
        let events = self.events_from_records(&records, &final_checks, &graph);
        let logical_parity = match self.basis {
            MemoryBasis::Z => (0..lat.distance())
                .map(|col| data_bits[lat.data_index(0, col)])
                .fold(false, |acc, b| acc ^ b),
            MemoryBasis::X => (0..lat.distance())
                .map(|row| data_bits[lat.data_index(row, 0)])
                .fold(false, |acc, b| acc ^ b),
        };
        (events, logical_parity)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{ExactMatchingDecoder, UnionFindDecoder};
    use quest_stabilizer::{SeedableRng, StdRng};

    #[test]
    fn noiseless_memory_never_fails() {
        let mut rng = StdRng::seed_from_u64(7);
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let exp = MemoryExperiment::new(3, 3, basis);
            for _ in 0..10 {
                let out = exp.run(
                    &MemoryNoise::noiseless(),
                    &UnionFindDecoder::new(),
                    &mut rng,
                );
                assert!(!out.logical_error, "{basis:?}");
                assert_eq!(out.detection_events, 0);
                assert_eq!(out.correction_weight, 0);
            }
        }
    }

    #[test]
    fn every_single_error_is_corrected_exhaustively() {
        // A distance-3 code must correct *every* weight-1 Pauli error on
        // any data qubit, with either decoder, in both bases.
        use quest_stabilizer::{Pauli, PauliString};
        let mut rng = StdRng::seed_from_u64(21);
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let exp = MemoryExperiment::new(3, 2, basis);
            let n = exp.lattice().num_qubits();
            for q in 0..exp.lattice().num_data() {
                for p in Pauli::ERRORS {
                    let inject = PauliString::from_sparse(n, &[(q, p)]);
                    for run in 0..2 {
                        let out = if run == 0 {
                            exp.run_with_injection(
                                &MemoryNoise::noiseless(),
                                Some(&inject),
                                &ExactMatchingDecoder::new(),
                                &mut rng,
                            )
                        } else {
                            exp.run_with_injection(
                                &MemoryNoise::noiseless(),
                                Some(&inject),
                                &UnionFindDecoder::new(),
                                &mut rng,
                            )
                        };
                        assert!(
                            !out.logical_error,
                            "{basis:?}: single {p} on data {q} beat decoder {run}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn low_rate_bit_flips_are_strongly_suppressed() {
        // Statistical check: with p = 0.02 on d=3, failures come only from
        // ≥2-error events: P ≈ C(9,2)·p²·P(fail|2) ≲ 2%. Assert a bound
        // well above the expectation but far below "no suppression".
        let mut rng = StdRng::seed_from_u64(21);
        let exp = MemoryExperiment::new(3, 1, MemoryBasis::Z);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::bit_flip(0.02),
            measurement_flip: 0.0,
        };
        let rate = exp.logical_error_rate(&noise, &ExactMatchingDecoder::new(), 1000, &mut rng);
        assert!(rate < 0.035, "logical rate {rate} not suppressed");
    }

    #[test]
    fn higher_distance_suppresses_more() {
        let mut rng = StdRng::seed_from_u64(33);
        let noise = MemoryNoise::code_capacity(0.04);
        let uf = UnionFindDecoder::new();
        let rate3 = MemoryExperiment::new(3, 2, MemoryBasis::Z)
            .logical_error_rate(&noise, &uf, 400, &mut rng);
        let rate5 = MemoryExperiment::new(5, 2, MemoryBasis::Z)
            .logical_error_rate(&noise, &uf, 400, &mut rng);
        assert!(
            rate5 <= rate3 + 0.02,
            "d=5 rate {rate5} should not exceed d=3 rate {rate3}"
        );
    }

    #[test]
    fn x_basis_memory_detects_z_noise() {
        let mut rng = StdRng::seed_from_u64(55);
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::X);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::phase_flip(0.05),
            measurement_flip: 0.0,
        };
        // Z noise produces detection events in the X-check graph.
        let mut total_events = 0;
        for _ in 0..20 {
            total_events += exp
                .run(&noise, &UnionFindDecoder::new(), &mut rng)
                .detection_events;
        }
        assert!(total_events > 0, "Z errors must trigger X checks");
    }

    #[test]
    fn circuit_level_noiseless_is_clean() {
        use crate::schedule::CircuitNoise;
        let mut rng = StdRng::seed_from_u64(91);
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        for _ in 0..5 {
            let out = exp.run_circuit_level(
                &CircuitNoise::noiseless(),
                &UnionFindDecoder::new(),
                &mut rng,
            );
            assert!(!out.logical_error);
            assert_eq!(out.detection_events, 0);
        }
    }

    #[test]
    fn circuit_level_noise_is_suppressed_at_low_p() {
        use crate::schedule::CircuitNoise;
        // Circuit-level thresholds are ~10x lower than code capacity;
        // at p = 5e-4 a d=3 code must still strongly suppress errors.
        let mut rng = StdRng::seed_from_u64(92);
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let noise = CircuitNoise::uniform(5e-4);
        let failures = (0..200)
            .filter(|_| {
                exp.run_circuit_level(&noise, &UnionFindDecoder::new(), &mut rng)
                    .logical_error
            })
            .count();
        assert!(failures <= 6, "{failures}/200 circuit-level failures");
    }

    #[test]
    fn circuit_level_distance_ordering_below_threshold() {
        use crate::schedule::CircuitNoise;
        let mut rng = StdRng::seed_from_u64(93);
        let noise = CircuitNoise::uniform(2e-3);
        let mut rate = |d: usize| {
            let exp = MemoryExperiment::new(d, d, MemoryBasis::Z);
            (0..150)
                .filter(|_| {
                    exp.run_circuit_level(&noise, &UnionFindDecoder::new(), &mut rng)
                        .logical_error
                })
                .count()
        };
        let r3 = rate(3);
        let r5 = rate(5);
        assert!(
            r5 <= r3 + 5,
            "d=5 ({r5}) should not lose badly to d=3 ({r3}) at p=2e-3"
        );
    }

    #[test]
    fn measurement_noise_alone_causes_no_logical_error() {
        // Pure measurement noise never corrupts data; the decoder must not
        // introduce logical errors from it (temporal pairs decode to no-op).
        let mut rng = StdRng::seed_from_u64(77);
        let exp = MemoryExperiment::new(3, 4, MemoryBasis::Z);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::noiseless(),
            measurement_flip: 0.05,
        };
        let rate = exp.logical_error_rate(&noise, &UnionFindDecoder::new(), 200, &mut rng);
        assert!(
            rate < 0.03,
            "measurement noise alone produced logical rate {rate}"
        );
    }
}
