//! Syndrome-extraction circuit generation.
//!
//! One QECC round executes, for every plaquette in parallel:
//!
//! * X-type: prepare the ancilla in `|+⟩`, apply CNOTs *from* the ancilla to
//!   each neighbouring data qubit, measure the ancilla in the X basis.
//! * Z-type: prepare the ancilla in `|0⟩`, apply CNOTs *from* each data
//!   qubit to the ancilla, measure in the Z basis.
//!
//! The four CNOT layers use the standard collision-free interleaving (X
//! ancillas visit corners in N-order `NW, NE, SW, SE`; Z ancillas in Z-order
//! `NW, SW, NE, SE`) so that no data qubit is touched twice in a layer —
//! the same property the paper's lock-step VLIW µop schedule relies on
//! (§4.3: "executed in lockstep for all qubits").

use crate::lattice::{Plaquette, RotatedLattice, StabKind};
use quest_stabilizer::{Circuit, Gate, Measurement, Pauli, Tableau};
use rand::Rng;

/// Corner visit order for X-type plaquettes (indices into `Corners`).
const X_ORDER: [usize; 4] = [0, 1, 2, 3]; // NW, NE, SW, SE
/// Corner visit order for Z-type plaquettes.
const Z_ORDER: [usize; 4] = [0, 2, 1, 3]; // NW, SW, NE, SE

/// The corner (index into [`crate::lattice::Corners`]: NW, NE, SW, SE)
/// visited by a plaquette of type `kind` in CNOT layer `layer` (0–3).
///
/// The two orders interleave collision-free: no data qubit is touched by
/// two plaquettes in the same layer. Exposed so the microcode generator in
/// the architecture crate can emit the identical lock-step schedule.
///
/// # Panics
///
/// Panics if `layer >= 4`.
pub fn corner_for_layer(kind: StabKind, layer: usize) -> usize {
    match kind {
        StabKind::X => X_ORDER[layer],
        StabKind::Z => Z_ORDER[layer],
    }
}

/// Generates syndrome-extraction circuits for a lattice.
///
/// # Example
///
/// ```
/// use quest_surface::{RotatedLattice, SyndromeCircuit};
///
/// let lat = RotatedLattice::new(3);
/// let sc = SyndromeCircuit::new(&lat);
/// // Depth: 1 prep + 4 CNOT layers + 1 measurement = 6 time steps.
/// assert_eq!(sc.round_circuit().num_measurements(), lat.num_ancillas());
/// ```
#[derive(Debug, Clone)]
pub struct SyndromeCircuit {
    lattice: RotatedLattice,
    round: Circuit,
}

/// The measured stabilizer values from one round, split by type and indexed
/// in plaquette order (the order of [`RotatedLattice::plaquettes_of`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SyndromeRound {
    /// X-stabilizer outcomes.
    pub x: Vec<bool>,
    /// Z-stabilizer outcomes.
    pub z: Vec<bool>,
}

impl SyndromeRound {
    /// Outcomes for one stabilizer type.
    pub fn of(&self, kind: StabKind) -> &[bool] {
        match kind {
            StabKind::X => &self.x,
            StabKind::Z => &self.z,
        }
    }
}

impl SyndromeCircuit {
    /// Builds the per-round circuit for `lattice`.
    pub fn new(lattice: &RotatedLattice) -> SyndromeCircuit {
        let round = Self::build_round(lattice);
        SyndromeCircuit {
            lattice: lattice.clone(),
            round,
        }
    }

    fn build_round(lattice: &RotatedLattice) -> Circuit {
        let mut c = Circuit::new();
        // Layer 0: ancilla preparation.
        for p in lattice.plaquettes() {
            c.push(match p.kind {
                StabKind::X => Gate::PrepX(p.ancilla),
                StabKind::Z => Gate::PrepZ(p.ancilla),
            });
        }
        // Layers 1–4: interleaved CNOTs.
        for layer in 0..4 {
            for p in lattice.plaquettes() {
                if let Some(g) = Self::cnot_for(lattice, p, layer) {
                    c.push(g);
                }
            }
        }
        // Layer 5: ancilla measurement.
        for p in lattice.plaquettes() {
            c.push(match p.kind {
                StabKind::X => Gate::MeasX(p.ancilla),
                StabKind::Z => Gate::MeasZ(p.ancilla),
            });
        }
        c
    }

    /// CNOT executed by plaquette `p` in CNOT-layer `layer`, if its
    /// scheduled corner exists.
    fn cnot_for(lattice: &RotatedLattice, p: &Plaquette, layer: usize) -> Option<Gate> {
        let corners = lattice.corners(p);
        let corner = match p.kind {
            StabKind::X => X_ORDER[layer],
            StabKind::Z => Z_ORDER[layer],
        };
        corners[corner].map(|data| match p.kind {
            StabKind::X => Gate::Cnot(p.ancilla, data),
            StabKind::Z => Gate::Cnot(data, p.ancilla),
        })
    }

    /// The lattice this circuit was generated for.
    pub fn lattice(&self) -> &RotatedLattice {
        &self.lattice
    }

    /// The full circuit of one syndrome-extraction round.
    pub fn round_circuit(&self) -> &Circuit {
        &self.round
    }

    /// Number of time steps (circuit depth) per round: prep + 4 CNOT layers
    /// + measurement.
    pub fn depth(&self) -> usize {
        6
    }

    /// Runs one round on a tableau and returns the syndrome, split by
    /// stabilizer type in plaquette order.
    pub fn run_round<R: Rng + ?Sized>(&self, t: &mut Tableau, rng: &mut R) -> SyndromeRound {
        let results: Vec<Measurement> = self.round.run_on(t, rng);
        self.split_by_kind(results.into_iter().map(|m| m.value))
    }

    /// Runs one round with **circuit-level noise**: every gate of the
    /// syndrome circuit is followed by depolarizing noise on its support,
    /// preparations can mis-initialize, and measurement outcomes can be
    /// misreported. Idle data qubits depolarize once per round.
    pub fn run_round_with_circuit_noise<R: Rng + ?Sized>(
        &self,
        t: &mut Tableau,
        noise: &CircuitNoise,
        rng: &mut R,
    ) -> SyndromeRound {
        let mut outcomes = Vec::new();
        for &g in &self.round {
            let mut results = Vec::new();
            Circuit::apply_gate(t, g, rng, &mut results);
            noise.corrupt_after(t, g, rng);
            for m in results {
                let mut v = m.value;
                if noise.p_meas > 0.0 && rng.gen::<f64>() < noise.p_meas {
                    v = !v;
                }
                outcomes.push(v);
            }
        }
        // Idle noise on data qubits (one layer per round).
        for q in 0..self.lattice.num_data() {
            noise.depolarize(t, q, noise.p_idle, rng);
        }
        self.split_by_kind(outcomes.into_iter())
    }

    /// Runs one round, injecting the given Pauli fault immediately after
    /// gate `gate_index` of the round circuit (fault-injection testing:
    /// a distance-d code must tolerate ⌊(d−1)/2⌋ *circuit* faults,
    /// including hook errors on CNOTs).
    ///
    /// # Panics
    ///
    /// Panics if `gate_index` is out of range or a fault qubit is out of
    /// range.
    pub fn run_round_with_fault<R: Rng + ?Sized>(
        &self,
        t: &mut Tableau,
        gate_index: usize,
        fault: &[(usize, Pauli)],
        rng: &mut R,
    ) -> SyndromeRound {
        assert!(gate_index < self.round.len(), "gate index out of range");
        let mut outcomes = Vec::new();
        for (i, &g) in self.round.iter().enumerate() {
            let mut results = Vec::new();
            Circuit::apply_gate(t, g, rng, &mut results);
            outcomes.extend(results.into_iter().map(|m| m.value));
            if i == gate_index {
                for &(q, p) in fault {
                    t.pauli(q, p);
                }
            }
        }
        self.split_by_kind(outcomes.into_iter())
    }

    fn split_by_kind(&self, values: impl Iterator<Item = bool>) -> SyndromeRound {
        let mut round = SyndromeRound::default();
        for (p, v) in self.lattice.plaquettes().iter().zip(values) {
            match p.kind {
                StabKind::X => round.x.push(v),
                StabKind::Z => round.z.push(v),
            }
        }
        round
    }
}

/// Circuit-level noise parameters for syndrome extraction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitNoise {
    /// Depolarizing probability after each single-qubit gate and
    /// preparation.
    pub p1: f64,
    /// Two-qubit depolarizing probability after each CNOT (each of the 15
    /// non-identity Pauli pairs with probability `p2 / 15`).
    pub p2: f64,
    /// Measurement misreport probability.
    pub p_meas: f64,
    /// Per-round idle depolarizing on data qubits.
    pub p_idle: f64,
}

impl CircuitNoise {
    /// Uniform circuit-level noise: every location fails with
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn uniform(p: f64) -> CircuitNoise {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        CircuitNoise {
            p1: p,
            p2: p,
            p_meas: p,
            p_idle: p,
        }
    }

    /// The noiseless limit.
    pub fn noiseless() -> CircuitNoise {
        CircuitNoise::uniform(0.0)
    }

    fn depolarize<R: Rng + ?Sized>(&self, t: &mut Tableau, q: usize, p: f64, rng: &mut R) {
        if p > 0.0 && rng.gen::<f64>() < p {
            let e = Pauli::ERRORS[rng.gen_range(0..3)];
            t.pauli(q, e);
        }
    }

    fn corrupt_after<R: Rng + ?Sized>(&self, t: &mut Tableau, g: Gate, rng: &mut R) {
        match g {
            Gate::Cnot(a, b) | Gate::Cz(a, b) | Gate::Swap(a, b) => {
                if self.p2 > 0.0 && rng.gen::<f64>() < self.p2 {
                    // One of the 15 non-identity two-qubit Paulis.
                    let idx = rng.gen_range(1..16usize);
                    let pa = Pauli::ALL[idx / 4];
                    let pb = Pauli::ALL[idx % 4];
                    t.pauli(a, pa);
                    t.pauli(b, pb);
                }
            }
            Gate::MeasZ(_) | Gate::MeasX(_) => {} // handled via p_meas
            Gate::I(_) => {}
            g1 => {
                let (q, _) = g1.qubits();
                self.depolarize(t, q, self.p1, rng);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quest_stabilizer::{SeedableRng, StdRng};
    use std::collections::HashSet;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xEC0)
    }

    #[test]
    fn schedule_is_collision_free() {
        for d in [3, 5, 7] {
            let lat = RotatedLattice::new(d);
            for layer in 0..4 {
                let mut touched = HashSet::new();
                for p in lat.plaquettes() {
                    if let Some(g) = SyndromeCircuit::cnot_for(&lat, p, layer) {
                        let (a, b) = g.qubits();
                        assert!(touched.insert(a), "qubit {a} reused in layer {layer}");
                        assert!(
                            touched.insert(b.unwrap()),
                            "qubit {:?} reused in layer {layer}",
                            b
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn every_plaquette_gets_all_its_cnots() {
        let lat = RotatedLattice::new(5);
        for p in lat.plaquettes() {
            let n: usize = (0..4)
                .filter(|&l| SyndromeCircuit::cnot_for(&lat, p, l).is_some())
                .count();
            assert_eq!(n, p.data.len());
        }
    }

    #[test]
    fn noiseless_z_syndrome_is_trivial_on_zero_state() {
        let lat = RotatedLattice::new(3);
        let sc = SyndromeCircuit::new(&lat);
        let mut t = Tableau::new(lat.num_qubits());
        let mut rng = rng();
        let s = sc.run_round(&mut t, &mut rng);
        // |0…0⟩ is a +1 eigenstate of every Z stabilizer.
        assert!(s.z.iter().all(|&b| !b), "Z syndrome fired on |0…0⟩");
    }

    #[test]
    fn x_syndrome_is_stable_after_first_round() {
        let lat = RotatedLattice::new(3);
        let sc = SyndromeCircuit::new(&lat);
        let mut t = Tableau::new(lat.num_qubits());
        let mut rng = rng();
        let first = sc.run_round(&mut t, &mut rng);
        // After projection, repeated noiseless rounds repeat the syndrome.
        for _ in 0..3 {
            let s = sc.run_round(&mut t, &mut rng);
            assert_eq!(s.x, first.x);
            assert!(s.z.iter().all(|&b| !b));
        }
    }

    #[test]
    fn single_x_error_flips_adjacent_z_stabilizers() {
        let lat = RotatedLattice::new(3);
        let sc = SyndromeCircuit::new(&lat);
        let mut t = Tableau::new(lat.num_qubits());
        let mut rng = rng();
        sc.run_round(&mut t, &mut rng); // project
        let victim = lat.data_index(1, 1); // bulk data qubit
        t.x(victim);
        let s = sc.run_round(&mut t, &mut rng);
        // The Z plaquettes containing the victim fire, nothing else.
        let z_plaqs: Vec<usize> = lat
            .plaquettes_of(StabKind::Z)
            .enumerate()
            .filter(|(_, p)| p.data.contains(&victim))
            .map(|(i, _)| i)
            .collect();
        for (i, &fired) in s.z.iter().enumerate() {
            assert_eq!(fired, z_plaqs.contains(&i), "Z stabilizer {i}");
        }
    }

    #[test]
    fn single_z_error_flips_adjacent_x_stabilizers() {
        let lat = RotatedLattice::new(3);
        let sc = SyndromeCircuit::new(&lat);
        let mut t = Tableau::new(lat.num_qubits());
        let mut rng = rng();
        let first = sc.run_round(&mut t, &mut rng);
        let victim = lat.data_index(1, 1);
        t.z(victim);
        let s = sc.run_round(&mut t, &mut rng);
        let x_plaqs: Vec<usize> = lat
            .plaquettes_of(StabKind::X)
            .enumerate()
            .filter(|(_, p)| p.data.contains(&victim))
            .map(|(i, _)| i)
            .collect();
        for i in 0..s.x.len() {
            let flipped = s.x[i] != first.x[i];
            assert_eq!(flipped, x_plaqs.contains(&i), "X stabilizer {i}");
        }
    }

    #[test]
    fn logical_z_survives_syndrome_extraction() {
        // Measuring stabilizers must not disturb the logical Z expectation
        // of |0_L⟩ (all-zeros is already a logical-Z +1 eigenstate).
        let lat = RotatedLattice::new(3);
        let sc = SyndromeCircuit::new(&lat);
        let mut t = Tableau::new(lat.num_qubits());
        let mut rng = rng();
        for _ in 0..4 {
            sc.run_round(&mut t, &mut rng);
        }
        assert!(t.is_stabilized_by(&lat.logical_z()));
    }

    #[test]
    fn round_circuit_measures_every_ancilla_once() {
        for d in [3, 5] {
            let lat = RotatedLattice::new(d);
            let sc = SyndromeCircuit::new(&lat);
            assert_eq!(sc.round_circuit().num_measurements(), lat.num_ancillas());
            assert_eq!(sc.depth(), 6);
        }
    }
}
