//! Surface-code substrate: lattice geometry, syndrome-extraction circuits,
//! space-time decoding, and logical-memory experiments.
//!
//! This crate implements the quantum-error-correction substrate the QuEST
//! paper builds on (its Appendix A): a rotated surface code simulated on the
//! stabilizer engine from [`quest_stabilizer`], a two-level decoder stack
//! (local lookup table + global union-find), and descriptors of the four
//! syndrome designs whose microcode footprints the paper evaluates.
//!
//! # Example: one error-corrected round trip
//!
//! ```
//! use quest_surface::{
//!     MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder,
//! };
//! use quest_stabilizer::{SeedableRng, StdRng};
//!
//! let experiment = MemoryExperiment::new(3, 3, MemoryBasis::Z);
//! let mut rng = StdRng::seed_from_u64(11);
//! let outcome = experiment.run(
//!     &MemoryNoise::phenomenological(1e-3),
//!     &UnionFindDecoder::new(),
//!     &mut rng,
//! );
//! assert!(!outcome.logical_error);
//! ```

#![forbid(unsafe_code)]

pub mod decoder;
pub mod designs;
pub mod graph;
pub mod lattice;
pub mod memory;
pub mod sampler;
pub mod schedule;
pub mod threshold;

pub use decoder::{
    Correction, CorrectionBatch, CostReport, Decoder, DecoderBackend, DecoderChoice, EventPlanes,
    ExactMatchingDecoder, LutDecoder, PipelinedUfDecoder, TableDecoder, UfScratch,
    UnionFindDecoder,
};
pub use designs::SyndromeDesign;
pub use graph::{DecodingEdge, DecodingGraph, EdgeId, Fault, NodeId};
pub use lattice::{Plaquette, RotatedLattice, StabKind};
pub use memory::{MemoryBasis, MemoryExperiment, MemoryNoise, MemoryOutcome};
pub use quest_stabilizer::frame::LaneWidth;
pub use sampler::{BatchOutcome, EarlyExit, FrameSampler, SamplerConfig, PLANE_DECODE_DENSITY};
pub use schedule::{SyndromeCircuit, SyndromeRound};
pub use threshold::{SweepConfig, ThresholdPoint, ThresholdSweep};
