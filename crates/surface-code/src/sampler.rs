//! Frame-based batched sampling of memory experiments.
//!
//! [`FrameSampler`] is the fast path behind
//! [`MemoryExperiment::run_batch`]: instead of re-running the O(n²)
//! tableau once per shot, it compiles the syndrome circuit once, derives
//! the noiseless reference record from a single tableau run, then
//! propagates bit-packed Pauli frames through the circuit — 64, 256 or
//! 512 shots per plane word depending on the configured [`LaneWidth`]
//! (see [`quest_stabilizer::frame`]). Per shot, only the decoder runs,
//! and even that is batched: detection events are handed to the decoder
//! as whole bit-planes ([`EventPlanes`]) when dense enough, falling back
//! to per-shot sparse sets below [`PLANE_DECODE_DENSITY`].
//!
//! # Why this is exact
//!
//! Both memory bases prepare a state whose *monitored* check record is
//! deterministically zero in the noiseless reference (`|0…0⟩` satisfies
//! every Z check; `|+…+⟩` every X check), and the final readout enters
//! the decoder only through check/logical *parities*, which are likewise
//! deterministic. Pauli frames predict flips of deterministic-in-reference
//! observables exactly, so the frame path's detection events and logical
//! flip are bit-for-bit those of a tableau run with the same physical
//! fault pattern — the property the `frame_equivalence` integration tests
//! pin down. (Random *unmonitored* measurements — the other-kind checks
//! of round 1 — perturb the effective frame only by operators of the
//! prepared state's stabilizer group, which carry no monitored-flip
//! component.) The constructor re-derives the reference from one tableau
//! run and asserts it is all-zero rather than assuming it.
//!
//! # Determinism
//!
//! All randomness comes from one `StdRng` per 64-shot block, seeded from
//! `(seed, global block index)` via [`quest_stabilizer::frame::block_seed`].
//! Each block consumes a fixed draw schedule (per round: data-channel draws
//! in qubit order, then measurement-flip draws in check order), and block
//! `b` always lands in lane `b % LANES` of word `b / LANES` — so results
//! are invariant under the internal chunk size, under any distribution of
//! chunks over threads, *and under the lane width*: `run_batch` is a pure
//! function of `(experiment, noise, decoder, shots, seed)`.
//!
//! Early exit (see [`EarlyExit`]) preserves this: the stop decision is a
//! pure function of the integer `(failures, shots)` tally, evaluated only
//! at fixed 512-shot-aligned milestones — never at chunk boundaries that
//! depend on the chunk size or lane width. Two runs with the same
//! `(shots, seed, early)` therefore stop at the same milestone and report
//! identical outcomes, whatever their chunking, threading or width.

use crate::decoder::{CorrectionBatch, Decoder, EventPlanes};
use crate::graph::{DecodingGraph, NodeId};
use crate::memory::{MemoryBasis, MemoryExperiment, MemoryNoise};
use quest_stabilizer::frame::{BlockRngs, FrameSimulator, FrameWord, LaneWidth, W256, W512};
use quest_stabilizer::{Gate, Pauli, SeedableRng, StdRng, Tableau};

/// Default shots per internal chunk: bounds plane memory while keeping
/// word-level parallelism saturated at every lane width.
const DEFAULT_CHUNK_SHOTS: usize = 4096;

/// Mean detection events per (node, shot) below which the sampler
/// scatters events to per-shot sparse sets instead of handing whole
/// planes to [`Decoder::decode_planes`]. At such densities almost every
/// plane word is zero and the sparse path's per-shot overhead is
/// negligible; both paths produce bit-identical corrections (see the
/// `frame_equivalence` tests), so the per-chunk choice never affects
/// results.
pub const PLANE_DECODE_DENSITY: f64 = 1.0 / 256.0;

/// Early-exit shot milestones are aligned to this many shots — a
/// multiple of every lane width's word size, so a milestone is a word
/// boundary at any width and the decision point never depends on the
/// width or chunk size.
pub const EARLY_EXIT_ALIGN: usize = 512;

/// `ln(1e9)`: the Hoeffding confidence level of the early-exit rate
/// bound (failure probability ≤ 1e-9 per decision point).
const EARLY_EXIT_CONFIDENCE_LN: f64 = 20.723_265_836_946_41;

/// Deterministic early-exit rule for batched sampling: stop a `(d, p)`
/// sweep point once its logical error rate is statistically decided.
///
/// Two stop conditions, checked only at [`EARLY_EXIT_ALIGN`]-aligned shot
/// milestones and only after `min_shots`:
///
/// 1. **Enough failures.** `failures >= target_failures`: the relative
///    error of `failures / shots` scales as `1/sqrt(failures)`, so past
///    the target the estimate no longer sharpens meaningfully — this is
///    what cuts decode-bound above-threshold points short.
/// 2. **Provably below.** When `decide_below > 0`, stop once the
///    one-sided Hoeffding upper bound
///    `failures/shots + sqrt(ln(1e9) / (2·shots))` falls below
///    `decide_below` — the point is decided to sit below the bracket.
///
/// The decision is a pure function of the integer `(failures, shots)`
/// tally, so it is invariant under chunk size, worker count and lane
/// width (the tallies themselves are, and milestones are fixed).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EarlyExit {
    /// Never stop before this many shots.
    pub min_shots: usize,
    /// Milestone spacing in shots; must be a positive multiple of
    /// [`EARLY_EXIT_ALIGN`].
    pub check_every: usize,
    /// Stop once this many failures have been observed.
    pub target_failures: usize,
    /// Stop once the rate is provably below this bound (`0.0` disables
    /// the rate rule).
    pub decide_below: f64,
}

impl Default for EarlyExit {
    fn default() -> EarlyExit {
        EarlyExit {
            min_shots: EARLY_EXIT_ALIGN,
            check_every: EARLY_EXIT_ALIGN,
            target_failures: 100,
            decide_below: 0.0,
        }
    }
}

impl EarlyExit {
    /// The default rule with the rate bound enabled at `decide_below`.
    #[must_use]
    pub fn decide_below(decide_below: f64) -> EarlyExit {
        EarlyExit {
            decide_below,
            ..EarlyExit::default()
        }
    }

    /// Whether sampling may stop at a milestone of `shots` shots with
    /// `failures` observed failures. Pure in its integer arguments.
    #[must_use]
    pub fn decided(&self, failures: usize, shots: usize) -> bool {
        if shots < self.min_shots {
            return false;
        }
        if failures >= self.target_failures {
            return true;
        }
        if self.decide_below > 0.0 {
            let s = shots as f64;
            let upper = failures as f64 / s + (EARLY_EXIT_CONFIDENCE_LN / (2.0 * s)).sqrt();
            return upper < self.decide_below;
        }
        false
    }

    fn validate(&self) {
        assert!(
            self.check_every > 0 && self.check_every.is_multiple_of(EARLY_EXIT_ALIGN),
            "check_every must be a positive multiple of {EARLY_EXIT_ALIGN}"
        );
    }
}

/// Knobs of a configured batch run; [`FrameSampler::run_batch`] uses the
/// defaults (widest lanes, default chunk, no early exit).
#[derive(Debug, Clone, Copy)]
pub struct SamplerConfig {
    /// Plane word width. All widths give bit-identical outcomes; wider
    /// is faster.
    pub width: LaneWidth,
    /// Shots per internal frame chunk (results are chunk-invariant).
    pub chunk_shots: usize,
    /// Optional deterministic early exit.
    pub early_exit: Option<EarlyExit>,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            width: LaneWidth::default(),
            chunk_shots: DEFAULT_CHUNK_SHOTS,
            early_exit: None,
        }
    }
}

/// Aggregate result of a batched memory run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Shots simulated. Equals the requested count unless an
    /// [`EarlyExit`] stopped the run at an earlier milestone.
    pub shots: usize,
    /// Shots whose decoded logical observable was flipped.
    pub failures: usize,
    /// Total detection events over all shots.
    pub detection_events: usize,
    /// Total data-qubit flips applied by the decoder over all shots.
    pub correction_weight: usize,
}

impl BatchOutcome {
    /// Fraction of failed shots.
    pub fn logical_error_rate(&self) -> f64 {
        self.failures as f64 / self.shots as f64
    }
}

/// A memory experiment compiled for bit-parallel frame sampling.
///
/// # Example
///
/// ```
/// use quest_surface::{FrameSampler, MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder};
///
/// let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
/// let sampler = FrameSampler::new(&exp);
/// let out = sampler.run_batch(
///     &MemoryNoise::code_capacity(1e-2),
///     &UnionFindDecoder::new(),
///     1024,
///     7,
/// );
/// assert_eq!(out.shots, 1024);
/// assert!(out.logical_error_rate() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct FrameSampler {
    /// The compiled per-round gate sequence.
    round_gates: Vec<Gate>,
    /// Space-time decoding graph (`rounds + 1` detection rounds).
    graph: DecodingGraph,
    /// For monitored check `c`: its index into the per-round measurement
    /// planes (ancilla measurements come out in plaquette order).
    monitored_slots: Vec<usize>,
    /// Data support of monitored check `c` (for final readout parities).
    check_support: Vec<Vec<usize>>,
    /// Data support of the judged logical operator.
    logical_support: Vec<usize>,
    num_data: usize,
    num_qubits: usize,
    num_checks: usize,
    rounds: usize,
    basis: MemoryBasis,
}

impl FrameSampler {
    /// Compiles `exp` for frame sampling and verifies, via one noiseless
    /// tableau run, that the monitored reference record is all-zero (the
    /// precondition for frame flips *being* the record).
    ///
    /// # Panics
    ///
    /// Panics if the reference-record derivation fails — that would mean
    /// the experiment's preparation does not satisfy its monitored checks
    /// deterministically, and frame sampling would be silently wrong.
    pub fn new(exp: &MemoryExperiment) -> FrameSampler {
        let lat = exp.lattice();
        let basis = exp.basis();
        let kind = basis.check_kind();
        let rounds = exp.rounds();
        let circuit = exp.syndrome_circuit();

        let monitored_slots: Vec<usize> = lat
            .plaquettes()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kind == kind)
            .map(|(slot, _)| slot)
            .collect();
        let check_support: Vec<Vec<usize>> =
            lat.plaquettes_of(kind).map(|p| p.data.clone()).collect();
        let logical_support: Vec<usize> = match basis {
            MemoryBasis::Z => (0..lat.distance())
                .map(|col| lat.data_index(0, col))
                .collect(),
            MemoryBasis::X => (0..lat.distance())
                .map(|row| lat.data_index(row, 0))
                .collect(),
        };

        let sampler = FrameSampler {
            round_gates: circuit.round_circuit().iter().copied().collect(),
            graph: exp.decoding_graph(),
            monitored_slots,
            check_support,
            logical_support,
            num_data: lat.num_data(),
            num_qubits: lat.num_qubits(),
            num_checks: lat.plaquettes_of(kind).count(),
            rounds,
            basis,
        };
        sampler.verify_reference(exp);
        sampler
    }

    /// One noiseless tableau run asserting the all-zero reference record:
    /// every monitored check must read 0 in every round, and the final
    /// check/logical readout parities must be 0.
    fn verify_reference(&self, exp: &MemoryExperiment) {
        // The seed only steers which branch unmonitored (other-kind)
        // measurements collapse into; monitored outcomes are deterministic.
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = Tableau::new(self.num_qubits);
        if self.basis == MemoryBasis::X {
            for q in 0..self.num_data {
                t.h(q);
            }
        }
        let kind = self.basis.check_kind();
        for round in 0..self.rounds {
            let syn = exp.syndrome_circuit().run_round(&mut t, &mut rng);
            assert!(
                syn.of(kind).iter().all(|&b| !b),
                "monitored reference record must be zero (round {round})"
            );
        }
        let data_bits: Vec<bool> = (0..self.num_data)
            .map(|q| match self.basis {
                MemoryBasis::Z => t.measure(q, &mut rng).value,
                MemoryBasis::X => t.measure_x(q, &mut rng).value,
            })
            .collect();
        for (c, support) in self.check_support.iter().enumerate() {
            let parity = support.iter().fold(false, |acc, &q| acc ^ data_bits[q]);
            assert!(!parity, "reference final check {c} must have even parity");
        }
        let logical = self
            .logical_support
            .iter()
            .fold(false, |acc, &q| acc ^ data_bits[q]);
        assert!(!logical, "reference logical readout must have even parity");
    }

    /// The decoding graph shots are decoded over.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Whether readout flips live in the X or Z frame plane: a Z-basis
    /// readout is flipped by the frame's X component and vice versa.
    fn readout_plane<'a, W: FrameWord>(&self, sim: &'a FrameSimulator<W>, q: usize) -> &'a [W] {
        match self.basis {
            MemoryBasis::Z => sim.x_plane(q),
            MemoryBasis::X => sim.z_plane(q),
        }
    }

    /// Runs `shots` shots with the default [`SamplerConfig`]. The result
    /// is independent of chunking, threading and lane width by
    /// construction.
    pub fn run_batch<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
    ) -> BatchOutcome {
        self.run_batch_configured(noise, decoder, shots, seed, &SamplerConfig::default())
    }

    /// Runs `shots` shots, processing at most `chunk_shots` per internal
    /// frame batch. Exposed so the determinism tests can assert chunking
    /// invariance; callers should prefer [`FrameSampler::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `shots` or `chunk_shots` is zero.
    pub fn run_batch_chunked<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
        chunk_shots: usize,
    ) -> BatchOutcome {
        let cfg = SamplerConfig {
            chunk_shots,
            ..SamplerConfig::default()
        };
        self.run_batch_configured(noise, decoder, shots, seed, &cfg)
    }

    /// Runs `shots` shots under an explicit [`SamplerConfig`] — lane
    /// width, chunk size and optional early exit.
    ///
    /// # Panics
    ///
    /// Panics if `shots` or `cfg.chunk_shots` is zero, or if
    /// `cfg.early_exit` has a misaligned `check_every`.
    pub fn run_batch_configured<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
        cfg: &SamplerConfig,
    ) -> BatchOutcome {
        match cfg.width {
            LaneWidth::X1 => self.run_core::<u64, D>(noise, decoder, shots, seed, cfg),
            LaneWidth::X4 => self.run_core::<W256, D>(noise, decoder, shots, seed, cfg),
            LaneWidth::X8 => self.run_core::<W512, D>(noise, decoder, shots, seed, cfg),
        }
    }

    /// The width-generic batch engine behind every `run_batch*` entry
    /// point.
    fn run_core<W: FrameWord, D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
        cfg: &SamplerConfig,
    ) -> BatchOutcome {
        assert!(shots > 0, "need at least one shot");
        assert!(cfg.chunk_shots > 0, "need a positive chunk size");
        if let Some(e) = &cfg.early_exit {
            e.validate();
        }
        let total_blocks = shots.div_ceil(64);
        let chunk_words = cfg
            .chunk_shots
            .div_ceil(W::BITS)
            .min(total_blocks.div_ceil(W::LANES));
        let chunk_blocks = chunk_words * W::LANES;
        let num_nodes = self.graph.boundary();

        let mut sim: FrameSimulator<W> =
            FrameSimulator::new(self.num_qubits, chunk_words * W::BITS);
        // Record planes: rec[(t * num_checks + c) * words + w].
        let mut rec = vec![W::ZERO; self.rounds * self.num_checks * chunk_words];
        // Per-measurement-slot planes of the current round.
        let mut meas: Vec<W> = Vec::new();
        // Node-major detection-event planes: ev[node * blocks + b].
        let mut ev = vec![0u64; num_nodes * chunk_blocks];
        // Uncorrected logical readout flips, one u64 per 64-shot block.
        let mut logical_blocks = vec![0u64; chunk_blocks];
        // Sparse-path and plane-path decode outputs, reused across chunks.
        let mut event_sets: Vec<Vec<NodeId>> = Vec::new();
        let mut batch = CorrectionBatch::new();

        let mut is_logical = vec![false; self.num_data];
        for &q in &self.logical_support {
            is_logical[q] = true;
        }

        let mut outcome = BatchOutcome {
            shots,
            failures: 0,
            detection_events: 0,
            correction_weight: 0,
        };

        let milestone_blocks = cfg.early_exit.as_ref().map(|e| e.check_every / 64);
        let mut base_block = 0usize;
        while base_block < total_blocks {
            let mut end_block = (base_block + chunk_blocks).min(total_blocks);
            if let Some(ms) = milestone_blocks {
                // Clip the chunk to the next milestone so tallies at a
                // milestone never depend on the chunk size.
                end_block = end_block.min((base_block / ms + 1) * ms);
            }
            let blocks = end_block - base_block;
            let words = blocks.div_ceil(W::LANES);
            let mut rngs = BlockRngs::new(seed, base_block as u64, blocks);
            self.simulate_chunk(noise, &mut sim, &mut rngs, words, &mut rec, &mut meas);

            // Shots beyond `shots` in the trailing block are dead lanes.
            let live_shots = (shots - base_block * 64).min(blocks * 64);
            self.extract_event_planes(
                &sim,
                &rec,
                words,
                live_shots,
                &mut ev[..num_nodes * blocks],
                &mut logical_blocks[..blocks],
            );

            let chunk_events: usize = ev[..num_nodes * blocks]
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum();
            outcome.detection_events += chunk_events;
            let planes = EventPlanes::new(&ev[..num_nodes * blocks], num_nodes, blocks, live_shots);
            let density = chunk_events as f64 / (num_nodes * live_shots) as f64;
            if density >= PLANE_DECODE_DENSITY {
                decoder.decode_planes(&self.graph, &planes, &mut batch);
                outcome.correction_weight += batch.total_flips();
                for shot in 0..live_shots {
                    let mut fail = logical_blocks[shot / 64] >> (shot % 64) & 1 == 1;
                    for &q in batch.flips_of(shot) {
                        if is_logical[q] {
                            fail = !fail;
                        }
                    }
                    if fail {
                        outcome.failures += 1;
                    }
                }
            } else {
                planes.scatter_into(&mut event_sets);
                let corrections = decoder.decode_many(&self.graph, &event_sets[..live_shots]);
                for (shot, correction) in corrections.iter().enumerate() {
                    outcome.correction_weight += correction.weight();
                    let mut fail = logical_blocks[shot / 64] >> (shot % 64) & 1 == 1;
                    for &q in &correction.data_flips {
                        if is_logical[q] {
                            fail = !fail;
                        }
                    }
                    if fail {
                        outcome.failures += 1;
                    }
                }
            }
            base_block = end_block;

            if let Some(e) = &cfg.early_exit {
                let done = (base_block * 64).min(shots);
                if done < shots
                    && done.is_multiple_of(e.check_every)
                    && e.decided(outcome.failures, done)
                {
                    outcome.shots = done;
                    break;
                }
            }
        }
        outcome
    }

    /// Simulates one chunk of shot-words: noise injection, gate
    /// propagation and measurement-flip sampling, filling `rec` with the
    /// monitored record planes.
    fn simulate_chunk<W: FrameWord>(
        &self,
        noise: &MemoryNoise,
        sim: &mut FrameSimulator<W>,
        rngs: &mut BlockRngs,
        words: usize,
        rec: &mut [W],
        meas: &mut Vec<W>,
    ) {
        let sim_words = sim.words();
        sim.clear();
        for t_idx in 0..self.rounds {
            // Fixed draw schedule, part 1: data channel in qubit order.
            for q in 0..self.num_data {
                sim.inject_pauli_channel(&noise.data, q, rngs);
            }
            meas.clear();
            for &g in &self.round_gates {
                sim.apply_gate(g, meas);
            }
            // Fixed draw schedule, part 2: measurement flips in check
            // order. Only the first `words` of each slot plane are live
            // when the final chunk is short.
            for c in 0..self.num_checks {
                let slot = self.monitored_slots[c];
                let dest = &mut rec[(t_idx * self.num_checks + c) * words..][..words];
                dest.copy_from_slice(&meas[slot * sim_words..][..words]);
                FrameSimulator::xor_flip_plane(noise.measurement_flip, rngs, dest);
            }
        }
    }

    /// Derives node-major detection-event planes (`ev[node * blocks + b]`,
    /// dead tail bits zeroed) from the record planes — round 0 against the
    /// all-zero reference, later rounds against their predecessor, and a
    /// final perfect-readout round from data parities. Also fills the
    /// uncorrected logical-flip blocks.
    fn extract_event_planes<W: FrameWord>(
        &self,
        sim: &FrameSimulator<W>,
        rec: &[W],
        words: usize,
        live_shots: usize,
        ev: &mut [u64],
        logical_blocks: &mut [u64],
    ) {
        let blocks = live_shots.div_ceil(64);
        let tail_bits = live_shots - (blocks - 1) * 64;
        let tail_mask = if tail_bits == 64 {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        debug_assert_eq!(ev.len(), self.graph.boundary() * blocks);
        debug_assert_eq!(logical_blocks.len(), blocks);

        // Writes the 64-bit lanes of a W-word plane into one node's row,
        // masking the trailing block's dead lanes.
        let flatten = |plane: &[W], out: &mut [u64]| {
            for (b, slot) in out.iter_mut().enumerate().take(blocks) {
                *slot = plane[b / W::LANES].lane(b % W::LANES);
            }
            out[blocks - 1] &= tail_mask;
        };

        let mut node_plane = vec![W::ZERO; words];
        for t_idx in 0..self.rounds {
            for c in 0..self.num_checks {
                let cur = &rec[(t_idx * self.num_checks + c) * words..][..words];
                if t_idx == 0 {
                    node_plane.copy_from_slice(cur);
                } else {
                    let prev = &rec[((t_idx - 1) * self.num_checks + c) * words..][..words];
                    for w in 0..words {
                        node_plane[w] = cur[w].xor(prev[w]);
                    }
                }
                let node = self.graph.node(t_idx, c);
                flatten(&node_plane, &mut ev[node * blocks..][..blocks]);
            }
        }
        // Final round: perfect readout parities against the last record.
        for c in 0..self.num_checks {
            let last = &rec[((self.rounds - 1) * self.num_checks + c) * words..][..words];
            for w in 0..words {
                let mut parity = W::ZERO;
                for &q in &self.check_support[c] {
                    parity = parity.xor(self.readout_plane(sim, q)[w]);
                }
                node_plane[w] = parity.xor(last[w]);
            }
            let node = self.graph.node(self.rounds, c);
            flatten(&node_plane, &mut ev[node * blocks..][..blocks]);
        }
        // Uncorrected logical readout flips.
        for (w, slot) in node_plane.iter_mut().enumerate().take(words) {
            let mut parity = W::ZERO;
            for &q in &self.logical_support {
                parity = parity.xor(self.readout_plane(sim, q)[w]);
            }
            *slot = parity;
        }
        flatten(&node_plane, logical_blocks);
    }

    /// Frame-path counterpart of
    /// [`MemoryExperiment::faulted_shot_events`]: propagates one explicit
    /// fault pattern (`errors_per_round[t][q]` XORed before round `t`,
    /// `meas_flips_per_round[t][c]` flipping monitored records) and
    /// returns the detection events plus the uncorrected logical readout
    /// parity. Consumes no randomness at all.
    ///
    /// # Panics
    ///
    /// Panics if the fault pattern's shape does not match the experiment.
    pub fn faulted_shot_events(
        &self,
        errors_per_round: &[Vec<Pauli>],
        meas_flips_per_round: &[Vec<bool>],
    ) -> (Vec<NodeId>, bool) {
        assert_eq!(
            errors_per_round.len(),
            self.rounds,
            "one error layer per round"
        );
        assert_eq!(
            meas_flips_per_round.len(),
            self.rounds,
            "one flip layer per round"
        );
        let mut sim: FrameSimulator = FrameSimulator::new(self.num_qubits, 1);
        let words = sim.words();
        let mut rec = vec![0u64; self.rounds * self.num_checks * words];
        let mut meas: Vec<u64> = Vec::new();
        for (t_idx, (errors, flips)) in errors_per_round
            .iter()
            .zip(meas_flips_per_round)
            .enumerate()
        {
            assert_eq!(errors.len(), self.num_data, "one Pauli per data qubit");
            assert_eq!(flips.len(), self.num_checks, "one flip bit per check");
            for (q, &e) in errors.iter().enumerate() {
                sim.xor_frame(q, 0, e);
            }
            meas.clear();
            for &g in &self.round_gates {
                sim.apply_gate(g, &mut meas);
            }
            for c in 0..self.num_checks {
                let slot = self.monitored_slots[c];
                rec[(t_idx * self.num_checks + c) * words..][..words]
                    .copy_from_slice(&meas[slot * words..][..words]);
                if flips[c] {
                    rec[(t_idx * self.num_checks + c) * words] ^= 1;
                }
            }
        }
        let num_nodes = self.graph.boundary();
        let mut ev = vec![0u64; num_nodes];
        let mut logical_blocks = vec![0u64; 1];
        self.extract_event_planes(&sim, &rec, words, 1, &mut ev, &mut logical_blocks);
        let planes = EventPlanes::new(&ev, num_nodes, 1, 1);
        let mut sets: Vec<Vec<NodeId>> = Vec::new();
        planes.scatter_into(&mut sets);
        (std::mem::take(&mut sets[0]), logical_blocks[0] & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::UnionFindDecoder;

    #[test]
    fn noiseless_batch_never_fails() {
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let exp = MemoryExperiment::new(3, 3, basis);
            let out = exp.run_batch(&MemoryNoise::noiseless(), &UnionFindDecoder::new(), 200, 1);
            assert_eq!(out.shots, 200);
            assert_eq!(out.failures, 0, "{basis:?}");
            assert_eq!(out.detection_events, 0);
            assert_eq!(out.correction_weight, 0);
        }
    }

    #[test]
    fn batch_rate_tracks_legacy_rate() {
        use quest_stabilizer::{SeedableRng, StdRng};
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let noise = MemoryNoise::phenomenological(0.02);
        let uf = UnionFindDecoder::new();
        let batch = exp.logical_error_rate_batch(&noise, &uf, 4000, 11);
        let mut rng = StdRng::seed_from_u64(11);
        let legacy = exp.logical_error_rate(&noise, &uf, 1000, &mut rng);
        // Same distribution, independent sampling: compare loosely.
        assert!(
            (batch - legacy).abs() < 0.03,
            "batch {batch} vs legacy {legacy}"
        );
    }

    #[test]
    fn non_word_aligned_shot_counts_are_exact() {
        // 100 shots = 1 block + 36 live bits of a second block; dead lanes
        // must not contribute failures or events.
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::Z);
        let noise = MemoryNoise::code_capacity(0.05);
        let uf = UnionFindDecoder::new();
        let out = exp.run_batch(&noise, &uf, 100, 5);
        assert_eq!(out.shots, 100);
        assert!(out.failures <= 100);
        // The same seed with a word-aligned count shares its first 64
        // lanes; rates must be in the same ballpark, not wildly off from
        // lane pollution.
        let aligned = exp.run_batch(&noise, &uf, 128, 5);
        assert!(aligned.detection_events > 0);
    }

    #[test]
    fn all_lane_widths_agree_exactly() {
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let sampler = FrameSampler::new(&exp);
        let noise = MemoryNoise::phenomenological(0.02);
        let uf = UnionFindDecoder::new();
        let outs: Vec<BatchOutcome> = LaneWidth::ALL
            .iter()
            .map(|&width| {
                let cfg = SamplerConfig {
                    width,
                    ..SamplerConfig::default()
                };
                sampler.run_batch_configured(&noise, &uf, 1000, 21, &cfg)
            })
            .collect();
        assert_eq!(outs[0], outs[1]);
        assert_eq!(outs[0], outs[2]);
        assert!(outs[0].detection_events > 0);
    }

    #[test]
    fn early_exit_stops_at_a_milestone_with_identical_prefix() {
        // Above threshold, target_failures is reached quickly; the early
        // run must report a 512-aligned shot count and exactly the
        // full run's tallies restricted to that prefix.
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let sampler = FrameSampler::new(&exp);
        let noise = MemoryNoise::code_capacity(0.08);
        let uf = UnionFindDecoder::new();
        let cfg = SamplerConfig {
            early_exit: Some(EarlyExit::default()),
            ..SamplerConfig::default()
        };
        let early = sampler.run_batch_configured(&noise, &uf, 8192, 3, &cfg);
        assert!(early.shots < 8192, "must exit early above threshold");
        assert_eq!(early.shots % EARLY_EXIT_ALIGN, 0);
        assert!(early.failures >= 100);
        // Re-running with exactly that many shots (no early exit) must
        // reproduce the tallies bit-for-bit: determinism of the prefix.
        let prefix = sampler.run_batch(&noise, &uf, early.shots, 3);
        assert_eq!(early, prefix);
    }

    #[test]
    fn early_exit_rate_rule_fires_below_bound() {
        // A noiseless run never fails, so the Hoeffding upper bound drops
        // below a loose decide_below once enough shots accumulate.
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::Z);
        let sampler = FrameSampler::new(&exp);
        let uf = UnionFindDecoder::new();
        let cfg = SamplerConfig {
            early_exit: Some(EarlyExit::decide_below(0.05)),
            ..SamplerConfig::default()
        };
        let out = sampler.run_batch_configured(&MemoryNoise::noiseless(), &uf, 1 << 14, 9, &cfg);
        // sqrt(ln(1e9) / (2 s)) < 0.05 needs s >= 4145 -> stop at 4608.
        assert!(out.shots < 1 << 14, "rate rule must fire");
        assert_eq!(out.failures, 0);
        assert_eq!(out.shots % EARLY_EXIT_ALIGN, 0);
    }

    #[test]
    fn x_basis_batch_detects_z_noise() {
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::X);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::phase_flip(0.05),
            measurement_flip: 0.0,
        };
        let out = exp.run_batch(&noise, &UnionFindDecoder::new(), 640, 9);
        assert!(out.detection_events > 0, "Z errors must trigger X checks");
    }

    #[test]
    fn x_basis_batch_ignores_x_noise() {
        // X errors act trivially on |+…+⟩ memory: no X-check events, no
        // logical-X flips.
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::X);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::bit_flip(0.2),
            measurement_flip: 0.0,
        };
        let out = exp.run_batch(&noise, &UnionFindDecoder::new(), 640, 9);
        assert_eq!(out.detection_events, 0);
        assert_eq!(out.failures, 0);
    }
}
