//! Frame-based batched sampling of memory experiments.
//!
//! [`FrameSampler`] is the fast path behind
//! [`MemoryExperiment::run_batch`]: instead of re-running the O(n²)
//! tableau once per shot, it compiles the syndrome circuit once, derives
//! the noiseless reference record from a single tableau run, then
//! propagates bit-packed Pauli frames (64 shots per word, see
//! [`quest_stabilizer::frame`]) through the circuit. Per shot, only the
//! decoder runs.
//!
//! # Why this is exact
//!
//! Both memory bases prepare a state whose *monitored* check record is
//! deterministically zero in the noiseless reference (`|0…0⟩` satisfies
//! every Z check; `|+…+⟩` every X check), and the final readout enters
//! the decoder only through check/logical *parities*, which are likewise
//! deterministic. Pauli frames predict flips of deterministic-in-reference
//! observables exactly, so the frame path's detection events and logical
//! flip are bit-for-bit those of a tableau run with the same physical
//! fault pattern — the property the `frame_equivalence` integration tests
//! pin down. (Random *unmonitored* measurements — the other-kind checks
//! of round 1 — perturb the effective frame only by operators of the
//! prepared state's stabilizer group, which carry no monitored-flip
//! component.) The constructor re-derives the reference from one tableau
//! run and asserts it is all-zero rather than assuming it.
//!
//! # Determinism
//!
//! All randomness comes from one `StdRng` per 64-shot word, seeded from
//! `(seed, global word index)` via [`quest_stabilizer::frame::block_seed`].
//! Each word consumes a fixed draw schedule (per round: data-channel draws
//! in qubit order, then measurement-flip draws in check order), so results
//! are invariant under the internal chunk size and under any distribution
//! of chunks over threads — `run_batch` is a pure function of
//! `(experiment, noise, decoder, shots, seed)`.

use crate::decoder::Decoder;
use crate::graph::{DecodingGraph, NodeId};
use crate::memory::{MemoryBasis, MemoryExperiment, MemoryNoise};
use quest_stabilizer::frame::{BlockRngs, FrameSimulator, SHOTS_PER_WORD};
use quest_stabilizer::{Gate, Pauli, SeedableRng, StdRng, Tableau};

/// Default shots per internal chunk (64 words): bounds plane memory while
/// keeping word-level parallelism saturated.
const DEFAULT_CHUNK_SHOTS: usize = 4096;

/// Aggregate result of a batched memory run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOutcome {
    /// Shots simulated.
    pub shots: usize,
    /// Shots whose decoded logical observable was flipped.
    pub failures: usize,
    /// Total detection events over all shots.
    pub detection_events: usize,
    /// Total data-qubit flips applied by the decoder over all shots.
    pub correction_weight: usize,
}

impl BatchOutcome {
    /// Fraction of failed shots.
    pub fn logical_error_rate(&self) -> f64 {
        self.failures as f64 / self.shots as f64
    }
}

/// A memory experiment compiled for bit-parallel frame sampling.
///
/// # Example
///
/// ```
/// use quest_surface::{FrameSampler, MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder};
///
/// let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
/// let sampler = FrameSampler::new(&exp);
/// let out = sampler.run_batch(
///     &MemoryNoise::code_capacity(1e-2),
///     &UnionFindDecoder::new(),
///     1024,
///     7,
/// );
/// assert_eq!(out.shots, 1024);
/// assert!(out.logical_error_rate() < 0.1);
/// ```
#[derive(Debug, Clone)]
pub struct FrameSampler {
    /// The compiled per-round gate sequence.
    round_gates: Vec<Gate>,
    /// Space-time decoding graph (`rounds + 1` detection rounds).
    graph: DecodingGraph,
    /// For monitored check `c`: its index into the per-round measurement
    /// planes (ancilla measurements come out in plaquette order).
    monitored_slots: Vec<usize>,
    /// Data support of monitored check `c` (for final readout parities).
    check_support: Vec<Vec<usize>>,
    /// Data support of the judged logical operator.
    logical_support: Vec<usize>,
    num_data: usize,
    num_qubits: usize,
    num_checks: usize,
    rounds: usize,
    basis: MemoryBasis,
}

impl FrameSampler {
    /// Compiles `exp` for frame sampling and verifies, via one noiseless
    /// tableau run, that the monitored reference record is all-zero (the
    /// precondition for frame flips *being* the record).
    ///
    /// # Panics
    ///
    /// Panics if the reference-record derivation fails — that would mean
    /// the experiment's preparation does not satisfy its monitored checks
    /// deterministically, and frame sampling would be silently wrong.
    pub fn new(exp: &MemoryExperiment) -> FrameSampler {
        let lat = exp.lattice();
        let basis = exp.basis();
        let kind = basis.check_kind();
        let rounds = exp.rounds();
        let circuit = exp.syndrome_circuit();

        let monitored_slots: Vec<usize> = lat
            .plaquettes()
            .iter()
            .enumerate()
            .filter(|(_, p)| p.kind == kind)
            .map(|(slot, _)| slot)
            .collect();
        let check_support: Vec<Vec<usize>> =
            lat.plaquettes_of(kind).map(|p| p.data.clone()).collect();
        let logical_support: Vec<usize> = match basis {
            MemoryBasis::Z => (0..lat.distance())
                .map(|col| lat.data_index(0, col))
                .collect(),
            MemoryBasis::X => (0..lat.distance())
                .map(|row| lat.data_index(row, 0))
                .collect(),
        };

        let sampler = FrameSampler {
            round_gates: circuit.round_circuit().iter().copied().collect(),
            graph: exp.decoding_graph(),
            monitored_slots,
            check_support,
            logical_support,
            num_data: lat.num_data(),
            num_qubits: lat.num_qubits(),
            num_checks: lat.plaquettes_of(kind).count(),
            rounds,
            basis,
        };
        sampler.verify_reference(exp);
        sampler
    }

    /// One noiseless tableau run asserting the all-zero reference record:
    /// every monitored check must read 0 in every round, and the final
    /// check/logical readout parities must be 0.
    fn verify_reference(&self, exp: &MemoryExperiment) {
        // The seed only steers which branch unmonitored (other-kind)
        // measurements collapse into; monitored outcomes are deterministic.
        let mut rng = StdRng::seed_from_u64(0);
        let mut t = Tableau::new(self.num_qubits);
        if self.basis == MemoryBasis::X {
            for q in 0..self.num_data {
                t.h(q);
            }
        }
        let kind = self.basis.check_kind();
        for round in 0..self.rounds {
            let syn = exp.syndrome_circuit().run_round(&mut t, &mut rng);
            assert!(
                syn.of(kind).iter().all(|&b| !b),
                "monitored reference record must be zero (round {round})"
            );
        }
        let data_bits: Vec<bool> = (0..self.num_data)
            .map(|q| match self.basis {
                MemoryBasis::Z => t.measure(q, &mut rng).value,
                MemoryBasis::X => t.measure_x(q, &mut rng).value,
            })
            .collect();
        for (c, support) in self.check_support.iter().enumerate() {
            let parity = support.iter().fold(false, |acc, &q| acc ^ data_bits[q]);
            assert!(!parity, "reference final check {c} must have even parity");
        }
        let logical = self
            .logical_support
            .iter()
            .fold(false, |acc, &q| acc ^ data_bits[q]);
        assert!(!logical, "reference logical readout must have even parity");
    }

    /// The decoding graph shots are decoded over.
    pub fn graph(&self) -> &DecodingGraph {
        &self.graph
    }

    /// Whether readout flips live in the X or Z frame plane: a Z-basis
    /// readout is flipped by the frame's X component and vice versa.
    fn readout_plane<'a>(&self, sim: &'a FrameSimulator, q: usize) -> &'a [u64] {
        match self.basis {
            MemoryBasis::Z => sim.x_plane(q),
            MemoryBasis::X => sim.z_plane(q),
        }
    }

    /// Runs `shots` shots. Equivalent to
    /// [`FrameSampler::run_batch_chunked`] with the default chunk size —
    /// the result is independent of chunking by construction.
    pub fn run_batch<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
    ) -> BatchOutcome {
        self.run_batch_chunked(noise, decoder, shots, seed, DEFAULT_CHUNK_SHOTS)
    }

    /// Runs `shots` shots, processing at most `chunk_shots` per internal
    /// frame batch. Exposed so the determinism tests can assert chunking
    /// invariance; callers should prefer [`FrameSampler::run_batch`].
    ///
    /// # Panics
    ///
    /// Panics if `shots` or `chunk_shots` is zero.
    pub fn run_batch_chunked<D: Decoder>(
        &self,
        noise: &MemoryNoise,
        decoder: &D,
        shots: usize,
        seed: u64,
        chunk_shots: usize,
    ) -> BatchOutcome {
        assert!(shots > 0, "need at least one shot");
        assert!(chunk_shots > 0, "need a positive chunk size");
        let total_words = shots.div_ceil(SHOTS_PER_WORD);
        let chunk_words = chunk_shots.div_ceil(SHOTS_PER_WORD).min(total_words);

        let mut sim = FrameSimulator::new(self.num_qubits, chunk_words * SHOTS_PER_WORD);
        // Record planes: rec[(t * num_checks + c) * chunk_words + w].
        let mut rec = vec![0u64; self.rounds * self.num_checks * chunk_words];
        // Per-measurement-slot planes of the current round.
        let mut meas: Vec<u64> = Vec::new();
        // Per-shot sparse events, reused across chunks.
        let mut event_sets: Vec<Vec<NodeId>> = vec![Vec::new(); chunk_words * SHOTS_PER_WORD];
        let mut logical_flip = vec![0u64; chunk_words];
        let mut node_plane = vec![0u64; chunk_words];

        let mut is_logical = vec![false; self.num_data];
        for &q in &self.logical_support {
            is_logical[q] = true;
        }

        let mut outcome = BatchOutcome {
            shots,
            failures: 0,
            detection_events: 0,
            correction_weight: 0,
        };

        let mut base_word = 0usize;
        while base_word < total_words {
            let words = chunk_words.min(total_words - base_word);
            let mut rngs = BlockRngs::new(seed, base_word as u64, words);
            self.simulate_chunk(noise, &mut sim, &mut rngs, words, &mut rec, &mut meas);

            // Shots beyond `shots` in the trailing word are dead lanes.
            let live_shots = (shots - base_word * SHOTS_PER_WORD).min(words * SHOTS_PER_WORD);
            self.extract_events(
                &sim,
                &rec,
                words,
                live_shots,
                &mut event_sets,
                &mut logical_flip,
                &mut node_plane,
            );

            let corrections = decoder.decode_many(&self.graph, &event_sets[..live_shots]);
            for (shot, (events, correction)) in event_sets[..live_shots]
                .iter()
                .zip(&corrections)
                .enumerate()
            {
                outcome.detection_events += events.len();
                outcome.correction_weight += correction.weight();
                let mut fail =
                    logical_flip[shot / SHOTS_PER_WORD] >> (shot % SHOTS_PER_WORD) & 1 == 1;
                for &q in &correction.data_flips {
                    if is_logical[q] {
                        fail = !fail;
                    }
                }
                if fail {
                    outcome.failures += 1;
                }
            }
            base_word += words;
        }
        outcome
    }

    /// Simulates one chunk of shot-words: noise injection, gate
    /// propagation and measurement-flip sampling, filling `rec` with the
    /// monitored record planes.
    fn simulate_chunk(
        &self,
        noise: &MemoryNoise,
        sim: &mut FrameSimulator,
        rngs: &mut BlockRngs,
        words: usize,
        rec: &mut [u64],
        meas: &mut Vec<u64>,
    ) {
        let sim_words = sim.words();
        sim.clear();
        for t_idx in 0..self.rounds {
            // Fixed draw schedule, part 1: data channel in qubit order.
            for q in 0..self.num_data {
                sim.inject_pauli_channel(&noise.data, q, rngs);
            }
            meas.clear();
            for &g in &self.round_gates {
                sim.apply_gate(g, meas);
            }
            // Fixed draw schedule, part 2: measurement flips in check
            // order. Only the first `words` of each slot plane are live
            // when the final chunk is short.
            for c in 0..self.num_checks {
                let slot = self.monitored_slots[c];
                let dest = &mut rec[(t_idx * self.num_checks + c) * words..][..words];
                dest.copy_from_slice(&meas[slot * sim_words..][..words]);
                FrameSimulator::xor_flip_plane(noise.measurement_flip, rngs, dest);
            }
        }
    }

    /// Derives detection-event planes from the record planes and scatters
    /// them into per-shot sparse event lists (ascending node order, the
    /// order [`MemoryExperiment`]'s tableau path produces). Also fills the
    /// uncorrected logical-flip plane.
    #[allow(clippy::too_many_arguments)]
    fn extract_events(
        &self,
        sim: &FrameSimulator,
        rec: &[u64],
        words: usize,
        live_shots: usize,
        event_sets: &mut [Vec<NodeId>],
        logical_flip: &mut [u64],
        node_plane: &mut [u64],
    ) {
        for ev in &mut event_sets[..live_shots] {
            ev.clear();
        }
        // Mask for the partially-filled trailing word.
        let tail_bits = live_shots - (live_shots - 1) / SHOTS_PER_WORD * SHOTS_PER_WORD;
        let tail_mask = if tail_bits == SHOTS_PER_WORD {
            u64::MAX
        } else {
            (1u64 << tail_bits) - 1
        };
        let live_words = live_shots.div_ceil(SHOTS_PER_WORD);

        let scatter = |plane: &[u64], node: NodeId, event_sets: &mut [Vec<NodeId>]| {
            for (w, &word) in plane.iter().enumerate().take(live_words) {
                let mut bits = word;
                if w == live_words - 1 {
                    bits &= tail_mask;
                }
                while bits != 0 {
                    let shot = w * SHOTS_PER_WORD + bits.trailing_zeros() as usize;
                    event_sets[shot].push(node);
                    bits &= bits - 1;
                }
            }
        };

        // Temporal differences: round 0 against the all-zero reference,
        // later rounds against their predecessor.
        for t_idx in 0..self.rounds {
            for c in 0..self.num_checks {
                let cur = &rec[(t_idx * self.num_checks + c) * words..][..words];
                if t_idx == 0 {
                    node_plane[..words].copy_from_slice(cur);
                } else {
                    let prev = &rec[((t_idx - 1) * self.num_checks + c) * words..][..words];
                    for w in 0..words {
                        node_plane[w] = cur[w] ^ prev[w];
                    }
                }
                scatter(&node_plane[..words], self.graph.node(t_idx, c), event_sets);
            }
        }
        // Final round: perfect readout parities against the last record.
        for c in 0..self.num_checks {
            let last = &rec[((self.rounds - 1) * self.num_checks + c) * words..][..words];
            for w in 0..words {
                let mut parity = 0u64;
                for &q in &self.check_support[c] {
                    parity ^= self.readout_plane(sim, q)[w];
                }
                node_plane[w] = parity ^ last[w];
            }
            scatter(
                &node_plane[..words],
                self.graph.node(self.rounds, c),
                event_sets,
            );
        }
        // Uncorrected logical readout flips.
        for (w, flip) in logical_flip.iter_mut().enumerate().take(words) {
            let mut parity = 0u64;
            for &q in &self.logical_support {
                parity ^= self.readout_plane(sim, q)[w];
            }
            *flip = parity;
        }
    }

    /// Frame-path counterpart of
    /// [`MemoryExperiment::faulted_shot_events`]: propagates one explicit
    /// fault pattern (`errors_per_round[t][q]` XORed before round `t`,
    /// `meas_flips_per_round[t][c]` flipping monitored records) and
    /// returns the detection events plus the uncorrected logical readout
    /// parity. Consumes no randomness at all.
    ///
    /// # Panics
    ///
    /// Panics if the fault pattern's shape does not match the experiment.
    pub fn faulted_shot_events(
        &self,
        errors_per_round: &[Vec<Pauli>],
        meas_flips_per_round: &[Vec<bool>],
    ) -> (Vec<NodeId>, bool) {
        assert_eq!(
            errors_per_round.len(),
            self.rounds,
            "one error layer per round"
        );
        assert_eq!(
            meas_flips_per_round.len(),
            self.rounds,
            "one flip layer per round"
        );
        let mut sim = FrameSimulator::new(self.num_qubits, SHOTS_PER_WORD);
        let words = sim.words();
        let mut rec = vec![0u64; self.rounds * self.num_checks * words];
        let mut meas: Vec<u64> = Vec::new();
        for (t_idx, (errors, flips)) in errors_per_round
            .iter()
            .zip(meas_flips_per_round)
            .enumerate()
        {
            assert_eq!(errors.len(), self.num_data, "one Pauli per data qubit");
            assert_eq!(flips.len(), self.num_checks, "one flip bit per check");
            for (q, &e) in errors.iter().enumerate() {
                sim.xor_frame(q, 0, e);
            }
            meas.clear();
            for &g in &self.round_gates {
                sim.apply_gate(g, &mut meas);
            }
            for c in 0..self.num_checks {
                let slot = self.monitored_slots[c];
                rec[(t_idx * self.num_checks + c) * words..][..words]
                    .copy_from_slice(&meas[slot * words..][..words]);
                if flips[c] {
                    rec[(t_idx * self.num_checks + c) * words] ^= 1;
                }
            }
        }
        let mut event_sets: Vec<Vec<NodeId>> = vec![Vec::new(); SHOTS_PER_WORD];
        let mut logical_flip = vec![0u64; words];
        let mut node_plane = vec![0u64; words];
        self.extract_events(
            &sim,
            &rec,
            words,
            1,
            &mut event_sets,
            &mut logical_flip,
            &mut node_plane,
        );
        let events = std::mem::take(&mut event_sets[0]);
        (events, logical_flip[0] & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::UnionFindDecoder;

    #[test]
    fn noiseless_batch_never_fails() {
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            let exp = MemoryExperiment::new(3, 3, basis);
            let out = exp.run_batch(&MemoryNoise::noiseless(), &UnionFindDecoder::new(), 200, 1);
            assert_eq!(out.shots, 200);
            assert_eq!(out.failures, 0, "{basis:?}");
            assert_eq!(out.detection_events, 0);
            assert_eq!(out.correction_weight, 0);
        }
    }

    #[test]
    fn batch_rate_tracks_legacy_rate() {
        use quest_stabilizer::{SeedableRng, StdRng};
        let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
        let noise = MemoryNoise::phenomenological(0.02);
        let uf = UnionFindDecoder::new();
        let batch = exp.logical_error_rate_batch(&noise, &uf, 4000, 11);
        let mut rng = StdRng::seed_from_u64(11);
        let legacy = exp.logical_error_rate(&noise, &uf, 1000, &mut rng);
        // Same distribution, independent sampling: compare loosely.
        assert!(
            (batch - legacy).abs() < 0.03,
            "batch {batch} vs legacy {legacy}"
        );
    }

    #[test]
    fn non_word_aligned_shot_counts_are_exact() {
        // 100 shots = 1 word + 36 live bits of a second word; dead lanes
        // must not contribute failures or events.
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::Z);
        let noise = MemoryNoise::code_capacity(0.05);
        let uf = UnionFindDecoder::new();
        let out = exp.run_batch(&noise, &uf, 100, 5);
        assert_eq!(out.shots, 100);
        assert!(out.failures <= 100);
        // The same seed with a word-aligned count shares its first 64
        // lanes; rates must be in the same ballpark, not wildly off from
        // lane pollution.
        let aligned = exp.run_batch(&noise, &uf, 128, 5);
        assert!(aligned.detection_events > 0);
    }

    #[test]
    fn x_basis_batch_detects_z_noise() {
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::X);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::phase_flip(0.05),
            measurement_flip: 0.0,
        };
        let out = exp.run_batch(&noise, &UnionFindDecoder::new(), 640, 9);
        assert!(out.detection_events > 0, "Z errors must trigger X checks");
    }

    #[test]
    fn x_basis_batch_ignores_x_noise() {
        // X errors act trivially on |+…+⟩ memory: no X-check events, no
        // logical-X flips.
        let exp = MemoryExperiment::new(3, 2, MemoryBasis::X);
        let noise = MemoryNoise {
            data: quest_stabilizer::PauliChannel::bit_flip(0.2),
            measurement_flip: 0.0,
        };
        let out = exp.run_batch(&noise, &UnionFindDecoder::new(), 640, 9);
        assert_eq!(out.detection_events, 0);
        assert_eq!(out.failures, 0);
    }
}
