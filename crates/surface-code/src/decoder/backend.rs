//! The pluggable decode-engine layer: [`DecoderBackend`] and its cost
//! accounting.
//!
//! Everything in the workspace that decodes — the master controller's
//! global decoder, the runtime's shared decode pool, the MCE-local
//! [`LutDecoder`] pipeline — dispatches through this trait, so a decode
//! engine can be swapped per run (the runtime's `DecoderChoice`, the
//! CLI's `--decoder` flag) without touching any of those layers. Unlike
//! the read-only [`Decoder`] trait used by the samplers,
//! a backend takes `&mut self`: it owns its scratch memory (zero
//! per-shot allocation) and accumulates a [`CostReport`] across decodes.
//!
//! # Cost model
//!
//! Each backend prices its decodes in cycles of the 10 GHz SFQ clock and
//! a Josephson-junction footprint, using the same constants as the
//! microcode-memory model in `quest-core`'s `jj` module (duplicated here
//! because the dependency points the other way: core builds on
//! surface-code). Cycle counts are pure functions of `(graph, events)`
//! and [`CostReport::merge`] is order-invariant, so the runtime's decode
//! pool — which splits a batch across workers in nondeterministic order
//! — reports bit-identical costs to the single-threaded reference.

use super::batch::{BatchGraphs, DecodeJob};
use super::lut::LutDecoder;
use super::pipelined::PipelinedUfDecoder;
use super::table::TableDecoder;
use super::union_find::{UfScratch, UfTrace, UnionFindDecoder};
use super::{Correction, CorrectionBatch, Decoder, EventPlanes, ExactMatchingDecoder};
use crate::graph::{DecodingGraph, Fault, NodeId};
use crate::lattice::StabKind;
use std::collections::BTreeMap;
use std::fmt;

/// JJs per bit of decode-pipeline memory (ERSFQ non-destructive-readout
/// cell; mirrors `quest_core::jj::JJ_PER_BIT`).
pub(crate) const JJ_PER_BIT: u64 = 41;

/// Fixed JJ overhead per pipeline stage or memory channel — address
/// decoder, sense amps, sequencing (mirrors `quest_core::jj`'s per-
/// channel overhead).
pub(crate) const JJ_PER_CHANNEL: u64 = 500;

/// SFQ read latency of a memory bank, in clock cycles, as a function of
/// the bank's size in bits (mirrors
/// `quest_core::jj::read_latency_cycles`: larger banks need deeper
/// address decoding).
pub(crate) fn read_latency_cycles(bank_bits: u64) -> u64 {
    if bank_bits <= 512 {
        1
    } else if bank_bits <= 2048 {
        2
    } else {
        3
    }
}

/// Accumulated decode-cost counters for one backend.
///
/// All fields are integers and [`CostReport::merge`] only sums and
/// maxes, so merging per-worker reports in any order yields the same
/// total — the property that lets the sharded runtime report the same
/// `decode_cost` as the single-threaded reference.
#[must_use]
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CostReport {
    /// Decodes performed by the backend's primary engine.
    pub decodes: u64,
    /// Decodes the backend handed to its union-find fallback (graphs or
    /// event sets outside the primary engine's domain).
    pub fallback_decodes: u64,
    /// Total modeled decode cycles at the 10 GHz SFQ clock.
    pub cycles: u64,
    /// Most expensive single decode, in cycles (the decode-latency
    /// worst case, which bounds the syndrome backlog).
    pub max_decode_cycles: u64,
    /// Modeled JJ footprint of the decode hardware. A capacity, not a
    /// rate: merging takes the max, and software backends report 0.
    pub jj_count: u64,
}

impl CostReport {
    /// Folds another report in: counters and cycles add, capacities max.
    pub fn merge(&mut self, other: &CostReport) {
        self.decodes = self.decodes.saturating_add(other.decodes);
        self.fallback_decodes = self.fallback_decodes.saturating_add(other.fallback_decodes);
        self.cycles = self.cycles.saturating_add(other.cycles);
        self.max_decode_cycles = self.max_decode_cycles.max(other.max_decode_cycles);
        self.jj_count = self.jj_count.max(other.jj_count);
    }

    /// Records one decode that cost `cycles`, attributing it to the
    /// primary engine or the fallback.
    pub(crate) fn record(&mut self, cycles: u64, fallback: bool) {
        if fallback {
            self.fallback_decodes = self.fallback_decodes.saturating_add(1);
        } else {
            self.decodes = self.decodes.saturating_add(1);
        }
        self.cycles = self.cycles.saturating_add(cycles);
        self.max_decode_cycles = self.max_decode_cycles.max(cycles);
    }
}

impl fmt::Display for CostReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} decodes (+{} fallback), {} cycles ({} max/decode), {} JJs",
            self.decodes, self.fallback_decodes, self.cycles, self.max_decode_cycles, self.jj_count
        )
    }
}

/// A decode engine the master controller, decode pool and MCE pipeline
/// can dispatch through.
///
/// Implementations own their scratch memory and cost accumulator;
/// [`DecoderBackend::decode`] must be total (any graph, any event set)
/// and deterministic in `(graph, events)` alone.
pub trait DecoderBackend: std::fmt::Debug + Send {
    /// Stable machine-readable backend name (what `--decoder` parses and
    /// the serve ledger reports).
    fn name(&self) -> &'static str;

    /// Decodes one event set over `graph` into a correction, accruing
    /// the decode's modeled cost.
    fn decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Correction;

    /// Decodes a batch of event sets against one graph (scratch reuse
    /// is the implementation's concern; the default just loops).
    fn decode_many(
        &mut self,
        graph: &DecodingGraph,
        event_sets: &[Vec<NodeId>],
    ) -> Vec<Correction> {
        event_sets.iter().map(|ev| self.decode(graph, ev)).collect()
    }

    /// Attempts a decode that is allowed to *escalate* (return `None`)
    /// instead of falling back — the MCE-local contract, where a miss is
    /// forwarded to the global decoder rather than solved locally. The
    /// default never escalates.
    fn try_decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Option<Correction> {
        Some(self.decode(graph, events))
    }

    /// Decodes a whole batch handed over as detection-event bit-planes
    /// (see [`EventPlanes`]), writing each shot's data-qubit flips into
    /// `out`. Bit-identical to scattering the planes and calling
    /// [`DecoderBackend::decode_many`] — the default does exactly that;
    /// backends with a native plane path override it to skip the sparse
    /// sets and per-shot [`Correction`] allocations.
    fn decode_planes(
        &mut self,
        graph: &DecodingGraph,
        planes: &EventPlanes<'_>,
        out: &mut CorrectionBatch,
    ) {
        let mut event_sets: Vec<Vec<NodeId>> = Vec::new();
        planes.scatter_into(&mut event_sets);
        let corrections = self.decode_many(graph, &event_sets);
        out.clear();
        for c in &corrections {
            for &q in &c.data_flips {
                out.push_flip(q);
            }
            out.finish_shot();
        }
    }

    /// The cost accumulated since construction or the last
    /// [`DecoderBackend::reset_cost`].
    fn cost(&self) -> CostReport;

    /// Clears the cost accumulator (the decode pool scopes costs to one
    /// chunk this way).
    fn reset_cost(&mut self);

    /// Clones the backend behind the object (costs included), so systems
    /// holding a boxed backend stay `Clone`.
    fn clone_box(&self) -> Box<dyn DecoderBackend>;
}

impl Clone for Box<dyn DecoderBackend> {
    fn clone(&self) -> Box<dyn DecoderBackend> {
        self.clone_box()
    }
}

/// Decodes a tagged job batch through a backend against prebuilt
/// single-round graphs — the trait-dispatching counterpart of
/// [`decode_batch`](super::batch::decode_batch), used by the runtime's
/// decode pool.
pub fn decode_batch_backend(
    backend: &mut dyn DecoderBackend,
    graphs: &BatchGraphs,
    jobs: &[DecodeJob],
) -> Vec<Correction> {
    jobs.iter()
        .map(|job| backend.decode(graphs.graph(job.kind), &job.events))
        .collect()
}

/// The total work counted by a [`UfTrace`], in unit-work cycles: one
/// cycle per member visit, edge touch, merge, erased-edge insertion,
/// forest visit and peeled edge. The software backends price decodes
/// with this flat model; the pipelined backend prices the same trace
/// against its staged hardware model instead.
fn trace_work_cycles(t: &UfTrace) -> u64 {
    t.member_visits + t.edge_touches + t.merges + t.erased_edges + t.forest_visits + t.peeled_edges
}

/// [`UnionFindDecoder`] as a backend: the workspace's default global
/// decoder, with persistent scratch and trace-derived work accounting.
/// A software engine, so its JJ footprint is 0.
#[derive(Debug, Clone, Default)]
pub struct UfBackend {
    decoder: UnionFindDecoder,
    scratch: UfScratch,
    cost: CostReport,
}

impl UfBackend {
    /// Creates the backend with empty scratch (sized on first decode).
    pub fn new() -> UfBackend {
        UfBackend::default()
    }
}

impl DecoderBackend for UfBackend {
    fn name(&self) -> &'static str {
        "union-find"
    }

    fn decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        let mut trace = UfTrace::default();
        let correction = self
            .decoder
            .decode_traced(graph, events, &mut self.scratch, &mut trace);
        self.cost.record(trace_work_cycles(&trace), false);
        correction
    }

    fn decode_planes(
        &mut self,
        graph: &DecodingGraph,
        planes: &EventPlanes<'_>,
        out: &mut CorrectionBatch,
    ) {
        let cost = &mut self.cost;
        self.decoder
            .decode_planes_impl(graph, planes, &mut self.scratch, out, |trace| {
                cost.record(trace_work_cycles(trace), false);
            });
    }

    fn cost(&self) -> CostReport {
        self.cost
    }

    fn reset_cost(&mut self) {
        self.cost = CostReport::default();
    }

    fn clone_box(&self) -> Box<dyn DecoderBackend> {
        Box::new(self.clone())
    }
}

/// Largest event set the exact matcher enumerates; beyond it the
/// backend falls back to union-find (the DP is over `2^k` subsets, and
/// the underlying solver rejects `k > 20` outright).
pub const EXACT_MAX_EVENTS: usize = 16;

/// [`ExactMatchingDecoder`] as a backend: exact minimum-weight matching
/// for event sets up to [`EXACT_MAX_EVENTS`], union-find beyond. Cycles
/// model the subset-DP enumeration (`k · 2^k` for `k` events); software,
/// so 0 JJs.
#[derive(Debug, Clone, Default)]
pub struct ExactBackend {
    exact: ExactMatchingDecoder,
    fallback: UfBackend,
    cost: CostReport,
}

impl ExactBackend {
    /// Creates the backend.
    pub fn new() -> ExactBackend {
        ExactBackend::default()
    }
}

impl DecoderBackend for ExactBackend {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        let k = events.len();
        if k > EXACT_MAX_EVENTS {
            let correction = self.fallback.decode(graph, events);
            let fb = self.fallback.cost();
            self.fallback.reset_cost();
            self.cost.record(fb.cycles, true);
            return correction;
        }
        let correction = self.exact.decode(graph, events);
        self.cost.record((k as u64) << k, false);
        correction
    }

    fn cost(&self) -> CostReport {
        self.cost
    }

    fn reset_cost(&mut self) {
        self.cost = CostReport::default();
    }

    fn clone_box(&self) -> Box<dyn DecoderBackend> {
        Box::new(self.clone())
    }
}

/// [`TableDecoder`] as a backend: a complete precomputed lookup memory
/// per decoding-graph shape, built lazily on first sight of a feasible
/// graph (single round, at most [`TableDecoder::MAX_CHECKS`] checks) and
/// union-find fallback for everything else — the multi-round windows of
/// the master's escalation service, or distances whose check count
/// overflows the table (the runtime rejects those up front via
/// `DecoderChoice` validation, so in practice the fallback only sees
/// multi-round graphs).
///
/// Cost model: a table decode is one read of a bank holding
/// `2^checks × data_qubits` bits, priced at that bank's
/// `read_latency_cycles`; the JJ footprint is the bank plus one
/// channel of overhead.
#[derive(Debug, Clone, Default)]
pub struct TableBackend {
    /// Tables keyed by graph shape `(kind, rounds, num_checks)` — every
    /// tile of a run shares one lattice, so in practice this holds at
    /// most one table per stabilizer kind.
    tables: BTreeMap<(u8, usize, usize), TableDecoder>,
    fallback: UfBackend,
    cost: CostReport,
}

impl TableBackend {
    /// Creates the backend with no tables built yet.
    pub fn new() -> TableBackend {
        TableBackend::default()
    }

    fn shape_key(graph: &DecodingGraph) -> (u8, usize, usize) {
        let kind = match graph.kind() {
            StabKind::Z => 0u8,
            StabKind::X => 1u8,
        };
        (kind, graph.rounds(), graph.num_checks())
    }
}

/// Distinct data qubits a graph's edges can fault — the per-entry width
/// of a complete correction table over that graph.
pub(crate) fn graph_data_qubits(graph: &DecodingGraph) -> usize {
    let mut qubits: Vec<usize> = graph
        .edges()
        .iter()
        .filter_map(|e| match e.fault {
            Fault::Data(q) => Some(q),
            Fault::Measurement { .. } => None,
        })
        .collect();
    qubits.sort_unstable();
    qubits.dedup();
    qubits.len()
}

impl DecoderBackend for TableBackend {
    fn name(&self) -> &'static str {
        "table"
    }

    fn decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        if graph.rounds() != 1 || graph.num_checks() > TableDecoder::MAX_CHECKS {
            let correction = self.fallback.decode(graph, events);
            let fb = self.fallback.cost();
            self.fallback.reset_cost();
            self.cost.record(fb.cycles, true);
            return correction;
        }
        let table = self
            .tables
            .entry(Self::shape_key(graph))
            .or_insert_with(|| TableDecoder::build(graph));
        let bank_bits = table.storage_bits(graph_data_qubits(graph)) as u64;
        let correction = table.decode(graph, events);
        self.cost.record(read_latency_cycles(bank_bits), false);
        self.cost.jj_count = self
            .cost
            .jj_count
            .max(bank_bits * JJ_PER_BIT + JJ_PER_CHANNEL);
        correction
    }

    fn cost(&self) -> CostReport {
        self.cost
    }

    fn reset_cost(&mut self) {
        self.cost = CostReport::default();
    }

    fn clone_box(&self) -> Box<dyn DecoderBackend> {
        Box::new(self.clone())
    }
}

/// [`LutDecoder`] as a backend: the MCE-local engine of the paper's
/// two-level scheme, wrapping one prebuilt table for one single-round
/// graph. [`DecoderBackend::try_decode`] escalates (returns `None`) on
/// patterns outside the table — the decoder-pipeline contract — while
/// the total [`DecoderBackend::decode`] entry point falls back to
/// union-find so the backend stays usable anywhere.
///
/// Cost model: every lookup is one read of the LUT bank (entries ×
/// one tabulated edge id of `read_latency_cycles`-deep memory); the
/// bank plus a channel of overhead is the JJ footprint.
#[derive(Debug, Clone)]
pub struct LutBackend {
    lut: LutDecoder,
    /// LUT bank size in bits: one 32-bit word per entry (mirrors
    /// `quest_core::jj::WORD_BITS`).
    bank_bits: u64,
    fallback: UfBackend,
    cost: CostReport,
}

impl LutBackend {
    /// Builds the LUT for `graph` (must be single-round; see
    /// [`LutDecoder::new`]).
    pub fn new(graph: &DecodingGraph) -> LutBackend {
        let lut = LutDecoder::new(graph);
        let bank_bits = lut.num_entries() as u64 * 32;
        LutBackend {
            lut,
            bank_bits,
            fallback: UfBackend::new(),
            cost: CostReport::default(),
        }
    }

    /// Entries in the wrapped lookup table.
    pub fn num_entries(&self) -> usize {
        self.lut.num_entries()
    }

    fn charge_lookup(&mut self, escalated: bool) {
        self.cost.record(read_latency_cycles(self.bank_bits), false);
        if escalated {
            self.cost.fallback_decodes = self.cost.fallback_decodes.saturating_add(1);
        }
        self.cost.jj_count = self
            .cost
            .jj_count
            .max(self.bank_bits * JJ_PER_BIT + JJ_PER_CHANNEL);
    }
}

impl DecoderBackend for LutBackend {
    fn name(&self) -> &'static str {
        "lut"
    }

    fn decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        match self.try_decode(graph, events) {
            Some(correction) => correction,
            None => {
                let correction = self.fallback.decode(graph, events);
                self.cost.cycles = self.cost.cycles.saturating_add(self.fallback.cost().cycles);
                self.fallback.reset_cost();
                correction
            }
        }
    }

    fn try_decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Option<Correction> {
        let correction = self.lut.try_correction(graph, events);
        self.charge_lookup(correction.is_none());
        correction
    }

    fn cost(&self) -> CostReport {
        self.cost
    }

    fn reset_cost(&mut self) {
        self.cost = CostReport::default();
    }

    fn clone_box(&self) -> Box<dyn DecoderBackend> {
        Box::new(self.clone())
    }
}

/// Which decode engine a run's global decoders use — the validated,
/// user-facing selector threaded from `WorkloadSpec` / `--decoder` down
/// to every decoding site.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum DecoderChoice {
    /// Software union-find ([`UfBackend`]) — the default.
    #[default]
    UnionFind,
    /// Exact minimum-weight matching with union-find fallback
    /// ([`ExactBackend`]).
    Exact,
    /// Complete lookup tables with union-find fallback
    /// ([`TableBackend`]); only feasible up to distance 5.
    Table,
    /// Cycle-accurate pipelined hardware union-find
    /// ([`PipelinedUfDecoder`]), bit-identical corrections to
    /// [`UfBackend`].
    PipelinedUf,
}

impl DecoderChoice {
    /// Every selectable backend, in display order.
    pub const ALL: [DecoderChoice; 4] = [
        DecoderChoice::UnionFind,
        DecoderChoice::Exact,
        DecoderChoice::Table,
        DecoderChoice::PipelinedUf,
    ];

    /// The stable name ([`DecoderBackend::name`] of the built backend).
    pub fn name(self) -> &'static str {
        match self {
            DecoderChoice::UnionFind => "union-find",
            DecoderChoice::Exact => "exact",
            DecoderChoice::Table => "table",
            DecoderChoice::PipelinedUf => "pipelined-uf",
        }
    }

    /// Parses a backend name as printed by [`DecoderChoice::name`].
    pub fn parse(s: &str) -> Option<DecoderChoice> {
        DecoderChoice::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Builds a fresh backend of this kind.
    pub fn backend(self) -> Box<dyn DecoderBackend> {
        match self {
            DecoderChoice::UnionFind => Box::new(UfBackend::new()),
            DecoderChoice::Exact => Box::new(ExactBackend::new()),
            DecoderChoice::Table => Box::new(TableBackend::new()),
            DecoderChoice::PipelinedUf => Box::new(PipelinedUfDecoder::new()),
        }
    }
}

impl fmt::Display for DecoderChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::correction_explains_events;
    use crate::lattice::RotatedLattice;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn random_event_sets(graph: &DecodingGraph, count: usize, seed: u64) -> Vec<Vec<NodeId>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let all: Vec<NodeId> = (0..graph.boundary()).collect();
        (0..count)
            .map(|i| {
                let k = [0usize, 1, 2, 4, 6, 10][i % 6];
                all.choose_multiple(&mut rng, k).copied().collect()
            })
            .collect()
    }

    #[test]
    fn every_backend_explains_every_syndrome() {
        let lat = RotatedLattice::new(5);
        for rounds in [1usize, 3] {
            let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
            for choice in DecoderChoice::ALL {
                let mut backend = choice.backend();
                for events in random_event_sets(&g, 12, 7 + rounds as u64) {
                    let c = backend.decode(&g, &events);
                    assert!(
                        correction_explains_events(&g, &c, &events),
                        "{choice} failed on rounds={rounds}, events={events:?}"
                    );
                }
                let cost = backend.cost();
                assert!(cost.decodes + cost.fallback_decodes >= 12);
            }
        }
    }

    #[test]
    fn costs_are_deterministic_and_order_invariant() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let sets = random_event_sets(&g, 20, 3);
        for choice in DecoderChoice::ALL {
            // Same decodes, same accumulated cost, run to run.
            let run = |order: &[usize]| {
                let mut backend = choice.backend();
                for &i in order {
                    backend.decode(&g, &sets[i]);
                }
                backend.cost()
            };
            let forward: Vec<usize> = (0..sets.len()).collect();
            let reverse: Vec<usize> = (0..sets.len()).rev().collect();
            assert_eq!(run(&forward), run(&forward), "{choice}: not reproducible");
            assert_eq!(
                run(&forward),
                run(&reverse),
                "{choice}: cost depends on decode order"
            );
            // Split-and-merge equals one accumulator (the decode-pool
            // aggregation pattern).
            let mut whole = choice.backend();
            for s in &sets {
                whole.decode(&g, s);
            }
            let mut merged = CostReport::default();
            for half in sets.chunks(7) {
                let mut worker = choice.backend();
                for s in half {
                    worker.decode(&g, s);
                }
                merged.merge(&worker.cost());
            }
            assert_eq!(merged, whole.cost(), "{choice}: merge != sequential");
        }
    }

    #[test]
    fn backend_corrections_match_their_reference_engines() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let sets = random_event_sets(&g, 12, 11);
        let uf = UnionFindDecoder::new();
        let exact = ExactMatchingDecoder::new();
        for events in &sets {
            assert_eq!(
                UfBackend::new().decode(&g, events),
                uf.decode(&g, events),
                "UfBackend diverged from UnionFindDecoder"
            );
            assert_eq!(
                ExactBackend::new().decode(&g, events),
                exact.decode(&g, events),
                "ExactBackend diverged from ExactMatchingDecoder"
            );
        }
    }

    #[test]
    fn table_backend_builds_once_and_reports_hardware() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let mut backend = TableBackend::new();
        backend.decode(&g, &[g.node(0, 1)]);
        backend.decode(&g, &[]);
        let cost = backend.cost();
        assert_eq!(cost.decodes, 2);
        assert_eq!(cost.fallback_decodes, 0);
        assert!(cost.jj_count > 0, "a lookup memory has a JJ footprint");
        // A multi-round graph routes through the union-find fallback.
        let g3 = DecodingGraph::new(&lat, StabKind::Z, 3);
        backend.decode(&g3, &[g3.node(1, 1)]);
        assert_eq!(backend.cost().fallback_decodes, 1);
    }

    #[test]
    fn lut_backend_escalates_exactly_like_the_lut() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let lut = LutDecoder::new(&g);
        let mut backend = LutBackend::new(&g);
        let sets = random_event_sets(&g, 16, 5);
        for events in &sets {
            let raw = lut.try_correction(&g, events);
            let through = backend.try_decode(&g, events);
            assert_eq!(raw, through, "events={events:?}");
            // The total entry point must still explain everything.
            let c = backend.decode(&g, events);
            assert!(correction_explains_events(&g, &c, events));
        }
        assert!(backend.cost().jj_count > 0);
    }

    #[test]
    fn exact_backend_falls_back_beyond_its_event_budget() {
        let lat = RotatedLattice::new(7);
        let g = DecodingGraph::new(&lat, StabKind::Z, 2);
        let mut rng = StdRng::seed_from_u64(9);
        let all: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = all
            .choose_multiple(&mut rng, EXACT_MAX_EVENTS + 4)
            .copied()
            .collect();
        let mut backend = ExactBackend::new();
        let c = backend.decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(backend.cost().fallback_decodes, 1);
        assert_eq!(backend.cost().decodes, 0);
    }

    #[test]
    fn choice_round_trips_names() {
        for choice in DecoderChoice::ALL {
            assert_eq!(DecoderChoice::parse(choice.name()), Some(choice));
            assert_eq!(choice.backend().name(), choice.name());
        }
        assert_eq!(DecoderChoice::parse("mwpm"), None);
        assert_eq!(DecoderChoice::default(), DecoderChoice::UnionFind);
    }

    #[test]
    fn decode_batch_backend_matches_per_job_decodes() {
        let lat = RotatedLattice::new(5);
        let graphs = BatchGraphs::new(&lat);
        let jobs = vec![
            DecodeJob {
                kind: StabKind::Z,
                events: vec![0, 1],
            },
            DecodeJob {
                kind: StabKind::X,
                events: vec![2],
            },
            DecodeJob {
                kind: StabKind::Z,
                events: vec![],
            },
        ];
        for choice in DecoderChoice::ALL {
            let mut backend = choice.backend();
            let batch = decode_batch_backend(backend.as_mut(), &graphs, &jobs);
            for (job, got) in jobs.iter().zip(&batch) {
                let mut fresh = choice.backend();
                assert_eq!(*got, fresh.decode(graphs.graph(job.kind), &job.events));
            }
        }
    }
}
