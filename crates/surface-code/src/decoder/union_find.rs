//! Union-find decoder (Delfosse–Nickerson, "Almost-linear time decoding
//! algorithm for topological codes").
//!
//! The decoder grows clusters around detection events in half-edge steps,
//! merging clusters as they touch, until every cluster has even parity or
//! touches the boundary. The grown region is then treated as an erasure and
//! peeled: a spanning forest is built and leaf edges are processed inward,
//! emitting a correction edge whenever a leaf carries an unpaired event.
//!
//! This plays the role of the paper's global MWPM decoder in the master
//! controller; its output is validated against the exact matcher in tests.
//!
//! Decoding state lives in a [`UfScratch`] workspace so batch callers
//! (thousands of shots against one decoding graph) pay for the ~dozen
//! working vectors once instead of once per shot; [`Decoder::decode`]
//! remains the convenient single-shot entry point.

use super::{Correction, Decoder};
use crate::graph::{DecodingGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// Deterministic work counters recorded by one traced union-find decode
/// (see [`UnionFindDecoder::decode_traced`]).
///
/// Every counter is a pure function of `(graph, events)` — the decode
/// itself consumes no randomness and iterates in fixed node/edge order —
/// so hardware cost models built on a trace (the pipelined-UF backend)
/// inherit the decoder's determinism. The counters mirror the stages of
/// the Das et al. pipelined micro-architecture: growth work feeds the
/// spanning-tree stage, forest traversal the DFS stage, and peeled edges
/// the correction stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UfTrace {
    /// Growth iterations until every cluster is even or boundary-bound.
    pub growth_rounds: u64,
    /// Active-cluster member nodes visited, summed over growth rounds.
    pub member_visits: u64,
    /// Incident edges examined while growing, summed over growth rounds.
    pub edge_touches: u64,
    /// Cluster merge operations (union calls on fully-grown edges).
    pub merges: u64,
    /// Edges in the final erasure (support saturated at 2).
    pub erased_edges: u64,
    /// Nodes visited while building the peeling spanning forest.
    pub forest_visits: u64,
    /// Edges emitted into the correction by the peeling stage.
    pub peeled_edges: u64,
}

/// Scalable union-find decoder.
///
/// # Example
///
/// ```
/// use quest_surface::{DecodingGraph, RotatedLattice, StabKind, UnionFindDecoder};
/// use quest_surface::decoder::{correction_explains_events, Decoder};
///
/// let lat = RotatedLattice::new(5);
/// let g = DecodingGraph::new(&lat, StabKind::Z, 5);
/// let events = [g.node(1, 2), g.node(1, 3)];
/// let c = UnionFindDecoder::new().decode(&g, &events);
/// assert!(correction_explains_events(&g, &c, &events));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UnionFindDecoder {
    _private: (),
}

impl UnionFindDecoder {
    /// Creates the decoder.
    pub fn new() -> UnionFindDecoder {
        UnionFindDecoder::default()
    }
}

/// Reusable working memory for [`UnionFindDecoder`].
///
/// All vectors are sized for the decoding graph on first use and reused on
/// every subsequent [`UnionFindDecoder::decode_with`] call, so decoding a
/// batch of shots allocates nothing per shot (beyond the returned
/// [`Correction`]).
#[derive(Debug, Clone, Default)]
pub struct UfScratch {
    // Node-indexed.
    is_event: Vec<bool>,
    in_cluster: Vec<bool>,
    parent: Vec<usize>,
    rank: Vec<u8>,
    odd: Vec<bool>,
    touches_boundary: Vec<bool>,
    visited: Vec<bool>,
    parent_edge: Vec<Option<EdgeId>>,
    order: Vec<NodeId>,
    adj: Vec<Vec<EdgeId>>,
    queue: VecDeque<NodeId>,
    // Edge-indexed.
    support: Vec<u8>,
    delta: Vec<u8>,
    edge_stamp: Vec<usize>,
    erased: Vec<EdgeId>,
    /// `(root, node)` pairs of the current growth round, sorted so cluster
    /// processing order is the deterministic node order (see the growth
    /// loop: edge supports saturate, so claim order decides the matching).
    active_members: Vec<(usize, NodeId)>,
}

impl UfScratch {
    /// Creates an empty workspace; it sizes itself lazily on first decode.
    pub fn new() -> UfScratch {
        UfScratch::default()
    }

    /// Resets the workspace for a fresh decode over `graph`, resizing if
    /// the graph changed since the previous use.
    fn reset_for(&mut self, graph: &DecodingGraph) {
        let n = graph.num_nodes();
        let m = graph.edges().len();
        self.is_event.clear();
        self.is_event.resize(n, false);
        self.in_cluster.clear();
        self.in_cluster.resize(n, false);
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.odd.clear();
        self.odd.resize(n, false);
        self.touches_boundary.clear();
        self.touches_boundary.resize(n, false);
        self.visited.clear();
        self.visited.resize(n, false);
        self.parent_edge.clear();
        self.parent_edge.resize(n, None);
        self.order.clear();
        // Adjacency lists keep their inner allocations; only shrink the
        // outer vec if the graph shrank.
        for a in &mut self.adj {
            a.clear();
        }
        self.adj.resize(n, Vec::new());
        self.queue.clear();
        self.support.clear();
        self.support.resize(m, 0);
        self.delta.clear();
        self.delta.resize(m, 0);
        self.edge_stamp.clear();
        self.edge_stamp.resize(m, usize::MAX);
        self.erased.clear();
        self.active_members.clear();
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.odd[big] ^= self.odd[small];
        self.touches_boundary[big] |= self.touches_boundary[small];
    }

    /// A cluster is *active* (must keep growing) when it holds odd parity
    /// and does not touch the boundary.
    fn is_active_root(&self, root: usize) -> bool {
        self.odd[root] && !self.touches_boundary[root]
    }
}

impl UnionFindDecoder {
    /// Decodes using caller-provided working memory. Identical output to
    /// [`Decoder::decode`]; use this (or [`Decoder::decode_many`]) when
    /// decoding many shots against the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `events` contains the boundary node.
    pub fn decode_with(
        &self,
        graph: &DecodingGraph,
        events: &[NodeId],
        scratch: &mut UfScratch,
    ) -> Correction {
        self.decode_traced(graph, events, scratch, &mut UfTrace::default())
    }

    /// [`UnionFindDecoder::decode_with`], additionally accumulating the
    /// decode's deterministic work counts into `trace`. The correction is
    /// bit-identical to the untraced path (which delegates here with a
    /// discarded trace); the counters exist so hardware backends can put
    /// cycle prices on the exact work this decode performed.
    ///
    /// # Panics
    ///
    /// Panics if `events` contains the boundary node.
    pub fn decode_traced(
        &self,
        graph: &DecodingGraph,
        events: &[NodeId],
        scratch: &mut UfScratch,
        trace: &mut UfTrace,
    ) -> Correction {
        if events.is_empty() {
            return Correction::default();
        }
        let n = graph.num_nodes();
        let boundary = graph.boundary();
        scratch.reset_for(graph);
        for &e in events {
            assert!(!graph.is_boundary(e), "boundary node cannot be an event");
            scratch.is_event[e] = true;
            scratch.odd[e] = true;
            scratch.in_cluster[e] = true;
        }

        // --- Growth stage -------------------------------------------------
        loop {
            // Collect member nodes of active clusters as (root, node)
            // pairs and sort them. The sort is what makes the matching
            // deterministic: the growth loop below iterates cluster by
            // cluster, and edge supports saturate at 2 — so the *order*
            // clusters claim shared edges decides which chains complete
            // first. Sorted (root, node) order equals the old ordered-map
            // iteration (roots ascending, members in node order) without
            // allocating a map per round.
            scratch.active_members.clear();
            for node in 0..n {
                if node == boundary || !scratch.in_cluster[node] {
                    continue;
                }
                let root = scratch.find(node);
                if scratch.is_active_root(root) {
                    scratch.active_members.push((root, node));
                }
            }
            if scratch.active_members.is_empty() {
                break;
            }
            trace.growth_rounds += 1;
            trace.member_visits += scratch.active_members.len() as u64;
            scratch.active_members.sort_unstable();
            scratch.delta.iter_mut().for_each(|d| *d = 0);
            for i in 0..scratch.active_members.len() {
                let (root, node) = scratch.active_members[i];
                trace.edge_touches += graph.incident(node).len() as u64;
                for &e in graph.incident(node) {
                    if scratch.support[e] < 2 && scratch.edge_stamp[e] != root {
                        scratch.edge_stamp[e] = root;
                        scratch.delta[e] += 1;
                    }
                }
            }
            scratch.edge_stamp.iter_mut().for_each(|s| *s = usize::MAX);
            for e in 0..scratch.delta.len() {
                let d = scratch.delta[e];
                if d == 0 {
                    continue;
                }
                scratch.support[e] = (scratch.support[e] + d).min(2);
                if scratch.support[e] == 2 {
                    let edge = &graph.edges()[e];
                    let (a, b) = (edge.a, edge.b);
                    if a == boundary || b == boundary {
                        let inner = if a == boundary { b } else { a };
                        scratch.in_cluster[inner] = true;
                        let root = scratch.find(inner);
                        scratch.touches_boundary[root] = true;
                    } else {
                        scratch.in_cluster[a] = true;
                        scratch.in_cluster[b] = true;
                        scratch.union(a, b);
                        trace.merges += 1;
                    }
                }
            }
        }

        // --- Peeling stage ------------------------------------------------
        // Erasure = fully grown edges. Build a spanning forest with BFS,
        // seeding from the boundary first so boundary-touching trees are
        // rooted at the boundary (which absorbs leftover parity).
        for e in 0..scratch.support.len() {
            if scratch.support[e] == 2 {
                scratch.erased.push(e);
            }
        }
        for i in 0..scratch.erased.len() {
            let e = scratch.erased[i];
            let edge = &graph.edges()[e];
            scratch.adj[edge.a].push(e);
            scratch.adj[edge.b].push(e);
        }
        trace.erased_edges += scratch.erased.len() as u64;
        if !scratch.adj[boundary].is_empty() {
            Self::bfs(graph, scratch, boundary);
        }
        for node in 0..n {
            if !scratch.visited[node] && !scratch.adj[node].is_empty() {
                Self::bfs(graph, scratch, node);
            }
        }
        trace.forest_visits += scratch.order.len() as u64;

        // Peel leaves inward: process nodes in reverse BFS order; each node
        // (except roots) has a parent edge. If the node still carries an
        // event, the parent edge joins the correction and the event moves to
        // the parent.
        let mut correction_edges = Vec::new();
        for i in (0..scratch.order.len()).rev() {
            let node = scratch.order[i];
            if let Some(pe) = scratch.parent_edge[node] {
                if scratch.is_event[node] {
                    scratch.is_event[node] = false;
                    let parent = graph.other_end(pe, node);
                    if parent != boundary {
                        scratch.is_event[parent] = !scratch.is_event[parent];
                    }
                    correction_edges.push(pe);
                }
            }
        }
        debug_assert!(
            scratch.is_event.iter().all(|&p| !p),
            "union-find left unpaired events: growth stage incomplete"
        );
        trace.peeled_edges += correction_edges.len() as u64;

        Correction::from_edges(graph, correction_edges)
    }

    fn bfs(graph: &DecodingGraph, scratch: &mut UfScratch, start: NodeId) {
        scratch.visited[start] = true;
        scratch.queue.push_back(start);
        while let Some(u) = scratch.queue.pop_front() {
            scratch.order.push(u);
            for i in 0..scratch.adj[u].len() {
                let e = scratch.adj[u][i];
                let v = graph.other_end(e, u);
                if !scratch.visited[v] {
                    scratch.visited[v] = true;
                    scratch.parent_edge[v] = Some(e);
                    scratch.queue.push_back(v);
                }
            }
        }
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        self.decode_with(graph, events, &mut UfScratch::new())
    }

    fn decode_many(&self, graph: &DecodingGraph, event_sets: &[Vec<NodeId>]) -> Vec<Correction> {
        let mut scratch = UfScratch::new();
        event_sets
            .iter()
            .map(|ev| self.decode_with(graph, ev, &mut scratch))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{correction_explains_events, ExactMatchingDecoder};
    use crate::lattice::{RotatedLattice, StabKind};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn empty_events_trivial() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let c = UnionFindDecoder::new().decode(&g, &[]);
        assert!(c.edges.is_empty());
    }

    #[test]
    fn single_event_reaches_boundary() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        for c_idx in 0..g.num_checks() {
            let events = [g.node(0, c_idx)];
            let c = UnionFindDecoder::new().decode(&g, &events);
            assert!(correction_explains_events(&g, &c, &events), "check {c_idx}");
        }
    }

    #[test]
    fn pair_of_adjacent_events() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let e = g
            .edges()
            .iter()
            .find(|e| !g.is_boundary(e.a) && !g.is_boundary(e.b))
            .unwrap();
        let events = [e.a, e.b];
        let c = UnionFindDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
    }

    #[test]
    fn temporal_pair_needs_no_data_flip() {
        // A measurement error shows up as two temporal events on the same
        // check; the correction should involve no data flips.
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let events = [g.node(0, 4), g.node(1, 4)];
        let c = UnionFindDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(c.weight(), 0, "temporal match should flip no data qubits");
    }

    #[test]
    fn random_event_sets_always_explained() {
        let mut rng = StdRng::seed_from_u64(99);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let uf = UnionFindDecoder::new();
        for k in [1usize, 2, 3, 5, 8, 12] {
            for _ in 0..20 {
                let events: Vec<NodeId> = all_nodes.choose_multiple(&mut rng, k).copied().collect();
                let c = uf.decode(&g, &events);
                assert!(
                    correction_explains_events(&g, &c, &events),
                    "k = {k}, events = {events:?}"
                );
            }
        }
    }

    #[test]
    fn decode_is_deterministic_across_runs_and_threads() {
        // Regression test for the growth-stage grouping: cluster processing
        // order must be the deterministic (root, node) order, never a
        // hashed-map order that follows the per-process RandomState. The
        // matching must be bit-identical however often and wherever it is
        // computed.
        let mut rng = StdRng::seed_from_u64(2024);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let event_sets: Vec<Vec<NodeId>> = (0..40)
            .map(|_| all_nodes.choose_multiple(&mut rng, 6).copied().collect())
            .collect();

        let decode_all = |sets: &[Vec<NodeId>]| -> Vec<Correction> {
            let lat = RotatedLattice::new(5);
            let g = DecodingGraph::new(&lat, StabKind::Z, 4);
            let uf = UnionFindDecoder::new();
            sets.iter().map(|ev| uf.decode(&g, ev)).collect()
        };

        let first = decode_all(&event_sets);
        let second = decode_all(&event_sets);
        assert_eq!(first, second, "same-thread decode must be reproducible");

        // A spawned thread gets a freshly seeded RandomState for any
        // hashed collections it creates — decode there too.
        let sets = event_sets.clone();
        let third = std::thread::spawn(move || decode_all(&sets))
            .join()
            .expect("decode thread must not panic");
        assert_eq!(first, third, "cross-thread decode must be reproducible");
    }

    #[test]
    fn scratch_reuse_matches_fresh_decodes() {
        // decode_many (one reused workspace) must be bit-identical to
        // per-shot decode (fresh workspace each time), including when the
        // reused scratch has seen larger event sets first.
        let mut rng = StdRng::seed_from_u64(77);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 5);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let mut event_sets: Vec<Vec<NodeId>> = (0..30)
            .map(|i| {
                let k = [12usize, 6, 1, 0, 8, 3][i % 6];
                all_nodes.choose_multiple(&mut rng, k).copied().collect()
            })
            .collect();
        event_sets.push(Vec::new());
        let uf = UnionFindDecoder::new();
        let batch = uf.decode_many(&g, &event_sets);
        let fresh: Vec<Correction> = event_sets.iter().map(|ev| uf.decode(&g, ev)).collect();
        assert_eq!(batch, fresh);
    }

    #[test]
    fn scratch_survives_graph_size_changes() {
        // One workspace used across graphs of different sizes must resize
        // correctly in both directions.
        let uf = UnionFindDecoder::new();
        let mut scratch = UfScratch::new();
        for rounds in [4usize, 1, 3] {
            let lat = RotatedLattice::new(5);
            let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
            let events = [g.node(0, 2)];
            let with_scratch = uf.decode_with(&g, &events, &mut scratch);
            let fresh = uf.decode(&g, &events);
            assert_eq!(with_scratch, fresh, "rounds = {rounds}");
            assert!(correction_explains_events(&g, &with_scratch, &events));
        }
    }

    #[test]
    fn union_find_weight_is_close_to_exact_for_small_cases() {
        // UF is not guaranteed minimum weight, but for isolated small event
        // sets it must still produce a *valid* correction whose weight is at
        // most a small factor above optimal. We assert validity and a 3x
        // bound, which is far looser than observed.
        let mut rng = StdRng::seed_from_u64(123);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let uf = UnionFindDecoder::new();
        let exact = ExactMatchingDecoder::new();
        for _ in 0..30 {
            let events: Vec<NodeId> = all_nodes.choose_multiple(&mut rng, 4).copied().collect();
            let cu = uf.decode(&g, &events);
            let ce = exact.decode(&g, &events);
            assert!(correction_explains_events(&g, &cu, &events));
            assert!(correction_explains_events(&g, &ce, &events));
            assert!(
                cu.edges.len() <= 3 * ce.edges.len().max(1),
                "UF used {} edges vs exact {}",
                cu.edges.len(),
                ce.edges.len()
            );
        }
    }
}
