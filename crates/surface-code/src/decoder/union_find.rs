//! Union-find decoder (Delfosse–Nickerson, "Almost-linear time decoding
//! algorithm for topological codes").
//!
//! The decoder grows clusters around detection events in half-edge steps,
//! merging clusters as they touch, until every cluster has even parity or
//! touches the boundary. The grown region is then treated as an erasure and
//! peeled: a spanning forest is built and leaf edges are processed inward,
//! emitting a correction edge whenever a leaf carries an unpaired event.
//!
//! This plays the role of the paper's global MWPM decoder in the master
//! controller; its output is validated against the exact matcher in tests.

use super::{Correction, Decoder};
use crate::graph::{DecodingGraph, EdgeId, NodeId};
use std::collections::VecDeque;

/// Scalable union-find decoder.
///
/// # Example
///
/// ```
/// use quest_surface::{DecodingGraph, RotatedLattice, StabKind, UnionFindDecoder};
/// use quest_surface::decoder::{correction_explains_events, Decoder};
///
/// let lat = RotatedLattice::new(5);
/// let g = DecodingGraph::new(&lat, StabKind::Z, 5);
/// let events = [g.node(1, 2), g.node(1, 3)];
/// let c = UnionFindDecoder::new().decode(&g, &events);
/// assert!(correction_explains_events(&g, &c, &events));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UnionFindDecoder {
    _private: (),
}

impl UnionFindDecoder {
    /// Creates the decoder.
    pub fn new() -> UnionFindDecoder {
        UnionFindDecoder::default()
    }
}

struct Dsu {
    parent: Vec<usize>,
    rank: Vec<u8>,
    /// Odd number of unpaired detection events in the cluster (root-indexed).
    odd: Vec<bool>,
    /// Cluster touches the boundary (root-indexed).
    boundary: Vec<bool>,
}

impl Dsu {
    fn new(n: usize, events: &[bool]) -> Dsu {
        Dsu {
            parent: (0..n).collect(),
            rank: vec![0; n],
            odd: events.to_vec(),
            boundary: vec![false; n],
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.odd[big] ^= self.odd[small];
        self.boundary[big] |= self.boundary[small];
    }

    /// A cluster is *active* (must keep growing) when it holds odd parity
    /// and does not touch the boundary.
    fn is_active_root(&self, root: usize) -> bool {
        self.odd[root] && !self.boundary[root]
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        if events.is_empty() {
            return Correction::default();
        }
        let n = graph.num_nodes();
        let boundary = graph.boundary();
        let mut is_event = vec![false; n];
        for &e in events {
            assert!(!graph.is_boundary(e), "boundary node cannot be an event");
            is_event[e] = true;
        }

        // --- Growth stage -------------------------------------------------
        let mut dsu = Dsu::new(n, &is_event);
        // support[e] ∈ {0, 1, 2}: number of half-steps grown on edge e.
        let mut support = vec![0u8; graph.edges().len()];
        // Node membership in a growing cluster (false = untouched so far).
        let mut in_cluster = vec![false; n];
        for &e in events {
            in_cluster[e] = true;
        }

        // Scratch vectors reused across growth rounds: per-edge growth
        // increment this round, and a stamp marking edges already counted
        // for the current cluster (an edge grows once per incident *active
        // cluster*, so an edge between two active clusters gains two halves
        // per round and completes before cluster-to-boundary edges do —
        // this is what makes union-find respect error homology).
        let mut delta = vec![0u8; graph.edges().len()];
        let mut edge_stamp = vec![usize::MAX; graph.edges().len()];
        loop {
            // Group member nodes by active cluster root. (The index is
            // the node id itself, so a range loop is the clear form.)
            // BTreeMap, not HashMap: the growth loop below iterates this
            // map, and edge supports saturate at 2 — so the *order*
            // clusters claim shared edges decides which chains complete
            // first. A hashed map would make the matching depend on the
            // process's RandomState; root order must be the node order.
            let mut members_of_active: std::collections::BTreeMap<usize, Vec<NodeId>> =
                std::collections::BTreeMap::new();
            #[allow(clippy::needless_range_loop)]
            for node in 0..n {
                if node == boundary || !in_cluster[node] {
                    continue;
                }
                let root = dsu.find(node);
                if dsu.is_active_root(root) {
                    members_of_active.entry(root).or_default().push(node);
                }
            }
            if members_of_active.is_empty() {
                break;
            }
            delta.iter_mut().for_each(|d| *d = 0);
            for (&root, members) in &members_of_active {
                for &node in members {
                    for &e in graph.incident(node) {
                        if support[e] < 2 && edge_stamp[e] != root {
                            edge_stamp[e] = root;
                            delta[e] += 1;
                        }
                    }
                }
            }
            edge_stamp.iter_mut().for_each(|s| *s = usize::MAX);
            for (e, &d) in delta.iter().enumerate() {
                if d == 0 {
                    continue;
                }
                support[e] = (support[e] + d).min(2);
                if support[e] == 2 {
                    let edge = &graph.edges()[e];
                    let (a, b) = (edge.a, edge.b);
                    if a == boundary || b == boundary {
                        let inner = if a == boundary { b } else { a };
                        in_cluster[inner] = true;
                        let root = dsu.find(inner);
                        dsu.boundary[root] = true;
                    } else {
                        in_cluster[a] = true;
                        in_cluster[b] = true;
                        dsu.union(a, b);
                    }
                }
            }
        }

        // --- Peeling stage ------------------------------------------------
        // Erasure = fully grown edges. Build a spanning forest with BFS,
        // seeding from the boundary first so boundary-touching trees are
        // rooted at the boundary (which absorbs leftover parity).
        let erased: Vec<EdgeId> = (0..graph.edges().len())
            .filter(|&e| support[e] == 2)
            .collect();
        let mut visited = vec![false; n];
        let mut parent_edge: Vec<Option<EdgeId>> = vec![None; n];
        let mut order: Vec<NodeId> = Vec::new(); // BFS order, roots first
        let mut adj: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
        for &e in &erased {
            let edge = &graph.edges()[e];
            adj[edge.a].push(e);
            adj[edge.b].push(e);
        }
        let bfs = |start: NodeId,
                   visited: &mut Vec<bool>,
                   parent_edge: &mut Vec<Option<EdgeId>>,
                   order: &mut Vec<NodeId>| {
            let mut q = VecDeque::new();
            visited[start] = true;
            q.push_back(start);
            while let Some(u) = q.pop_front() {
                order.push(u);
                for &e in &adj[u] {
                    let v = graph.other_end(e, u);
                    if !visited[v] {
                        visited[v] = true;
                        parent_edge[v] = Some(e);
                        q.push_back(v);
                    }
                }
            }
        };
        if !adj[boundary].is_empty() {
            bfs(boundary, &mut visited, &mut parent_edge, &mut order);
        }
        for node in 0..n {
            if !visited[node] && !adj[node].is_empty() {
                bfs(node, &mut visited, &mut parent_edge, &mut order);
            }
        }

        // Peel leaves inward: process nodes in reverse BFS order; each node
        // (except roots) has a parent edge. If the node still carries an
        // event, the parent edge joins the correction and the event moves to
        // the parent.
        let mut pending = is_event;
        let mut correction_edges = Vec::new();
        for &node in order.iter().rev() {
            if let Some(pe) = parent_edge[node] {
                if pending[node] {
                    pending[node] = false;
                    let parent = graph.other_end(pe, node);
                    if parent != boundary {
                        pending[parent] = !pending[parent];
                    }
                    correction_edges.push(pe);
                }
            }
        }
        debug_assert!(
            pending.iter().all(|&p| !p),
            "union-find left unpaired events: growth stage incomplete"
        );

        Correction::from_edges(graph, correction_edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{correction_explains_events, ExactMatchingDecoder};
    use crate::lattice::{RotatedLattice, StabKind};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn empty_events_trivial() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let c = UnionFindDecoder::new().decode(&g, &[]);
        assert!(c.edges.is_empty());
    }

    #[test]
    fn single_event_reaches_boundary() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        for c_idx in 0..g.num_checks() {
            let events = [g.node(0, c_idx)];
            let c = UnionFindDecoder::new().decode(&g, &events);
            assert!(correction_explains_events(&g, &c, &events), "check {c_idx}");
        }
    }

    #[test]
    fn pair_of_adjacent_events() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let e = g
            .edges()
            .iter()
            .find(|e| !g.is_boundary(e.a) && !g.is_boundary(e.b))
            .unwrap();
        let events = [e.a, e.b];
        let c = UnionFindDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
    }

    #[test]
    fn temporal_pair_needs_no_data_flip() {
        // A measurement error shows up as two temporal events on the same
        // check; the correction should involve no data flips.
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let events = [g.node(0, 4), g.node(1, 4)];
        let c = UnionFindDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(c.weight(), 0, "temporal match should flip no data qubits");
    }

    #[test]
    fn random_event_sets_always_explained() {
        let mut rng = StdRng::seed_from_u64(99);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let uf = UnionFindDecoder::new();
        for k in [1usize, 2, 3, 5, 8, 12] {
            for _ in 0..20 {
                let events: Vec<NodeId> = all_nodes.choose_multiple(&mut rng, k).copied().collect();
                let c = uf.decode(&g, &events);
                assert!(
                    correction_explains_events(&g, &c, &events),
                    "k = {k}, events = {events:?}"
                );
            }
        }
    }

    #[test]
    fn decode_is_deterministic_across_runs_and_threads() {
        // Regression test for the growth-stage grouping map: with a
        // HashMap, cluster processing order followed the per-process (and
        // per-thread) RandomState, so two decodes of the same syndrome
        // could pick different valid matchings. The grouping map is now
        // ordered; the matching must be bit-identical however often and
        // wherever it is computed.
        let mut rng = StdRng::seed_from_u64(2024);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let event_sets: Vec<Vec<NodeId>> = (0..40)
            .map(|_| all_nodes.choose_multiple(&mut rng, 6).copied().collect())
            .collect();

        let decode_all = |sets: &[Vec<NodeId>]| -> Vec<Correction> {
            let lat = RotatedLattice::new(5);
            let g = DecodingGraph::new(&lat, StabKind::Z, 4);
            let uf = UnionFindDecoder::new();
            sets.iter().map(|ev| uf.decode(&g, ev)).collect()
        };

        let first = decode_all(&event_sets);
        let second = decode_all(&event_sets);
        assert_eq!(first, second, "same-thread decode must be reproducible");

        // A spawned thread gets a freshly seeded RandomState for any
        // hashed collections it creates — decode there too.
        let sets = event_sets.clone();
        let third = std::thread::spawn(move || decode_all(&sets))
            .join()
            .expect("decode thread must not panic");
        assert_eq!(first, third, "cross-thread decode must be reproducible");
    }

    #[test]
    fn union_find_weight_is_close_to_exact_for_small_cases() {
        // UF is not guaranteed minimum weight, but for isolated small event
        // sets it must still produce a *valid* correction whose weight is at
        // most a small factor above optimal. We assert validity and a 3x
        // bound, which is far looser than observed.
        let mut rng = StdRng::seed_from_u64(123);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let uf = UnionFindDecoder::new();
        let exact = ExactMatchingDecoder::new();
        for _ in 0..30 {
            let events: Vec<NodeId> = all_nodes.choose_multiple(&mut rng, 4).copied().collect();
            let cu = uf.decode(&g, &events);
            let ce = exact.decode(&g, &events);
            assert!(correction_explains_events(&g, &cu, &events));
            assert!(correction_explains_events(&g, &ce, &events));
            assert!(
                cu.edges.len() <= 3 * ce.edges.len().max(1),
                "UF used {} edges vs exact {}",
                cu.edges.len(),
                ce.edges.len()
            );
        }
    }
}
