//! Union-find decoder (Delfosse–Nickerson, "Almost-linear time decoding
//! algorithm for topological codes").
//!
//! The decoder grows clusters around detection events in half-edge steps,
//! merging clusters as they touch, until every cluster has even parity or
//! touches the boundary. The grown region is then treated as an erasure and
//! peeled: a spanning forest is built and leaf edges are processed inward,
//! emitting a correction edge whenever a leaf carries an unpaired event.
//!
//! This plays the role of the paper's global MWPM decoder in the master
//! controller; its output is validated against the exact matcher in tests.
//!
//! Decoding state lives in a [`UfScratch`] workspace so batch callers
//! (thousands of shots against one decoding graph) pay for the ~dozen
//! working vectors once instead of once per shot; [`Decoder::decode`]
//! remains the convenient single-shot entry point.

use super::{Correction, CorrectionBatch, Decoder, EventPlanes};
use crate::graph::{DecodingGraph, EdgeId, Fault, NodeId};
use std::collections::VecDeque;

/// Deterministic work counters recorded by one traced union-find decode
/// (see [`UnionFindDecoder::decode_traced`]).
///
/// Every counter is a pure function of `(graph, events)` — the decode
/// itself consumes no randomness and iterates in fixed node/edge order —
/// so hardware cost models built on a trace (the pipelined-UF backend)
/// inherit the decoder's determinism. The counters mirror the stages of
/// the Das et al. pipelined micro-architecture: growth work feeds the
/// spanning-tree stage, forest traversal the DFS stage, and peeled edges
/// the correction stage.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct UfTrace {
    /// Growth iterations until every cluster is even or boundary-bound.
    pub growth_rounds: u64,
    /// Frontier member nodes visited (cluster members that still have an
    /// unsaturated incident edge), summed over growth rounds. Interior
    /// members are skipped by an O(1) saturation check and do no work.
    pub member_visits: u64,
    /// Incident edges examined while growing frontier members, summed
    /// over growth rounds.
    pub edge_touches: u64,
    /// Cluster merge operations (union calls on fully-grown edges).
    pub merges: u64,
    /// Edges in the final erasure (support saturated at 2).
    pub erased_edges: u64,
    /// Nodes visited while building the peeling spanning forest.
    pub forest_visits: u64,
    /// Edges emitted into the correction by the peeling stage.
    pub peeled_edges: u64,
}

/// Scalable union-find decoder.
///
/// # Example
///
/// ```
/// use quest_surface::{DecodingGraph, RotatedLattice, StabKind, UnionFindDecoder};
/// use quest_surface::decoder::{correction_explains_events, Decoder};
///
/// let lat = RotatedLattice::new(5);
/// let g = DecodingGraph::new(&lat, StabKind::Z, 5);
/// let events = [g.node(1, 2), g.node(1, 3)];
/// let c = UnionFindDecoder::new().decode(&g, &events);
/// assert!(correction_explains_events(&g, &c, &events));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct UnionFindDecoder {
    _private: (),
}

impl UnionFindDecoder {
    /// Creates the decoder.
    pub fn new() -> UnionFindDecoder {
        UnionFindDecoder::default()
    }
}

/// Reusable working memory for [`UnionFindDecoder`].
///
/// All vectors are sized for the decoding graph on first use and reused on
/// every subsequent [`UnionFindDecoder::decode_with`] call, so decoding a
/// batch of shots allocates nothing per shot (beyond the returned
/// [`Correction`]).
#[derive(Debug, Clone, Default)]
pub struct UfScratch {
    // Node-indexed.
    is_event: Vec<bool>,
    in_cluster: Vec<bool>,
    /// Per cluster node: its incident edges not yet saturated. Growth
    /// skips members at 0 — interior nodes of a grown ball contribute no
    /// delta, and on large clusters they vastly outnumber the frontier.
    unsat: Vec<u8>,
    parent: Vec<usize>,
    rank: Vec<u8>,
    odd: Vec<bool>,
    touches_boundary: Vec<bool>,
    visited: Vec<bool>,
    parent_edge: Vec<Option<EdgeId>>,
    order: Vec<NodeId>,
    adj: Vec<Vec<EdgeId>>,
    queue: VecDeque<NodeId>,
    // Edge-indexed.
    support: Vec<u8>,
    delta: Vec<u8>,
    edge_stamp: Vec<usize>,
    erased: Vec<EdgeId>,
    /// `(root, node)` frontier pairs of the current growth round. List
    /// order never affects results: growth deltas are per-root distinct
    /// counts, and supports are applied in ascending edge order.
    active_members: Vec<(usize, NodeId)>,
    /// Every node that entered a cluster this decode — the exact set of
    /// nodes whose union-find state the undo pass must restore.
    cluster_nodes: Vec<NodeId>,
    /// Edges whose support went nonzero this decode (for the undo pass).
    touched_edges: Vec<EdgeId>,
    /// Edges that received growth `delta` in the current round; sorted
    /// before the support update so processing order equals the old
    /// ascending full-edge scan (claim order decides the matching).
    round_edges: Vec<EdgeId>,
    /// Sorted, deduplicated endpoints of erased edges: the only possible
    /// spanning-forest roots, replacing the old all-node seed scan.
    forest_seeds: Vec<NodeId>,
}

impl UfScratch {
    /// Creates an empty workspace; it sizes itself lazily on first decode.
    pub fn new() -> UfScratch {
        UfScratch::default()
    }

    /// Resets the workspace for a fresh decode over `graph`, resizing if
    /// the graph changed since the previous use.
    fn reset_for(&mut self, graph: &DecodingGraph) {
        let n = graph.num_nodes();
        let m = graph.edges().len();
        self.is_event.clear();
        self.is_event.resize(n, false);
        self.in_cluster.clear();
        self.in_cluster.resize(n, false);
        self.unsat.clear();
        self.unsat.resize(n, 0);
        self.parent.clear();
        self.parent.extend(0..n);
        self.rank.clear();
        self.rank.resize(n, 0);
        self.odd.clear();
        self.odd.resize(n, false);
        self.touches_boundary.clear();
        self.touches_boundary.resize(n, false);
        self.visited.clear();
        self.visited.resize(n, false);
        self.parent_edge.clear();
        self.parent_edge.resize(n, None);
        self.order.clear();
        // Adjacency lists keep their inner allocations; only shrink the
        // outer vec if the graph shrank.
        for a in &mut self.adj {
            a.clear();
        }
        self.adj.resize(n, Vec::new());
        self.queue.clear();
        self.support.clear();
        self.support.resize(m, 0);
        self.delta.clear();
        self.delta.resize(m, 0);
        self.edge_stamp.clear();
        self.edge_stamp.resize(m, usize::MAX);
        self.erased.clear();
        self.active_members.clear();
        self.cluster_nodes.clear();
        self.touched_edges.clear();
        self.round_edges.clear();
        self.forest_seeds.clear();
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (big, small) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big;
        if self.rank[big] == self.rank[small] {
            self.rank[big] += 1;
        }
        self.odd[big] ^= self.odd[small];
        self.touches_boundary[big] |= self.touches_boundary[small];
    }

    /// A cluster is *active* (must keep growing) when it holds odd parity
    /// and does not touch the boundary.
    fn is_active_root(&self, root: usize) -> bool {
        self.odd[root] && !self.touches_boundary[root]
    }
}

impl UnionFindDecoder {
    /// Decodes using caller-provided working memory. Identical output to
    /// [`Decoder::decode`]; use this (or [`Decoder::decode_many`]) when
    /// decoding many shots against the same graph.
    ///
    /// # Panics
    ///
    /// Panics if `events` contains the boundary node.
    pub fn decode_with(
        &self,
        graph: &DecodingGraph,
        events: &[NodeId],
        scratch: &mut UfScratch,
    ) -> Correction {
        self.decode_traced(graph, events, scratch, &mut UfTrace::default())
    }

    /// [`UnionFindDecoder::decode_with`], additionally accumulating the
    /// decode's deterministic work counts into `trace`. The correction is
    /// bit-identical to the untraced path (which delegates here with a
    /// discarded trace); the counters exist so hardware backends can put
    /// cycle prices on the exact work this decode performed.
    ///
    /// # Panics
    ///
    /// Panics if `events` contains the boundary node.
    pub fn decode_traced(
        &self,
        graph: &DecodingGraph,
        events: &[NodeId],
        scratch: &mut UfScratch,
        trace: &mut UfTrace,
    ) -> Correction {
        let mut edges = Vec::new();
        self.decode_edges(graph, events, scratch, trace, &mut edges);
        Correction::from_edges(graph, edges)
    }

    /// Core decode: appends the matched edges for `events` to `edges_out`
    /// (which is cleared first) without building a [`Correction`]. The
    /// plane-batched path calls [`Self::decode_edges_prepared`] per shot
    /// and XOR-folds the data flips itself.
    fn decode_edges(
        &self,
        graph: &DecodingGraph,
        events: &[NodeId],
        scratch: &mut UfScratch,
        trace: &mut UfTrace,
        edges_out: &mut Vec<EdgeId>,
    ) {
        edges_out.clear();
        if events.is_empty() {
            return;
        }
        scratch.reset_for(graph);
        self.decode_edges_prepared(graph, events, scratch, trace, edges_out);
    }

    /// [`Self::decode_edges`] against a scratch already reset for `graph`.
    ///
    /// Every loop here walks only touched-state lists (cluster members,
    /// delta'd edges, erased-edge endpoints), never the whole graph, and a
    /// final undo pass restores the scratch to its post-reset state — so
    /// per-shot cost is proportional to the clusters grown, not to
    /// `nodes + edges`. That is what makes plane-batched decoding cheap at
    /// low event density, where most shots grow a handful of tiny clusters.
    ///
    /// Output is bit-identical to a fresh-reset decode: each reordered
    /// iteration (round edges, erasure, forest seeds) is sorted back to the
    /// ascending order the full scans used, and the undo pass restores
    /// exactly the entries the decode mutated (union-find state on cluster
    /// nodes, forest state on BFS-visited nodes, support on delta'd edges;
    /// `delta`/`edge_stamp` are already restored per growth round).
    fn decode_edges_prepared(
        &self,
        graph: &DecodingGraph,
        events: &[NodeId],
        scratch: &mut UfScratch,
        trace: &mut UfTrace,
        edges_out: &mut Vec<EdgeId>,
    ) {
        edges_out.clear();
        if events.is_empty() {
            return;
        }
        let boundary = graph.boundary();
        for &e in events {
            assert!(!graph.is_boundary(e), "boundary node cannot be an event");
            scratch.is_event[e] = true;
            scratch.odd[e] = true;
            scratch.in_cluster[e] = true;
            // Supports are all zero on a clean scratch, so every incident
            // edge of a seed is unsaturated.
            scratch.unsat[e] = graph.incident(e).len() as u8;
            scratch.cluster_nodes.push(e);
        }

        // --- Growth stage -------------------------------------------------
        loop {
            // Collect member nodes of active clusters as (root, node)
            // pairs and sort them. The sort is what makes the matching
            // deterministic: the growth loop below iterates cluster by
            // cluster, and edge supports saturate at 2 — so the *order*
            // clusters claim shared edges decides which chains complete
            // first. `cluster_nodes` holds exactly the in-cluster nodes
            // (boundary excluded), so iterating it and sorting equals the
            // old ascending all-node scan. Members whose incident edges
            // are all saturated contribute no delta and are skipped
            // before the union-find lookup — `delta[e]` counts *distinct
            // adjacent active roots*, a pure set property, so dropping
            // zero-contribution members (and the member iteration order
            // itself) cannot change it. On a grown ball the interior
            // vastly outnumbers the frontier, so this check is what keeps
            // round cost proportional to the cluster surface.
            scratch.active_members.clear();
            for i in 0..scratch.cluster_nodes.len() {
                let node = scratch.cluster_nodes[i];
                if scratch.unsat[node] == 0 {
                    continue;
                }
                let root = scratch.find(node);
                if scratch.is_active_root(root) {
                    scratch.active_members.push((root, node));
                }
            }
            // An odd boundary-free cluster always has an unsaturated
            // frontier (saturation pulls the far endpoint in), so the
            // frontier list is empty exactly when no cluster is active.
            if scratch.active_members.is_empty() {
                break;
            }
            trace.growth_rounds += 1;
            trace.member_visits += scratch.active_members.len() as u64;
            scratch.round_edges.clear();
            for i in 0..scratch.active_members.len() {
                let (root, node) = scratch.active_members[i];
                trace.edge_touches += graph.incident(node).len() as u64;
                for &e in graph.incident(node) {
                    if scratch.support[e] < 2 && scratch.edge_stamp[e] != root {
                        scratch.edge_stamp[e] = root;
                        if scratch.delta[e] == 0 {
                            scratch.round_edges.push(e);
                        }
                        scratch.delta[e] += 1;
                    }
                }
            }
            // Only delta'd edges were stamped; restore their stamps, then
            // apply supports in ascending edge order, which decides edge
            // claim priority. Sorting the touched list and scanning every
            // edge for `delta > 0` build the same ascending vector; pick
            // whichever is cheaper for this round's density.
            for i in 0..scratch.round_edges.len() {
                scratch.edge_stamp[scratch.round_edges[i]] = usize::MAX;
            }
            let m = scratch.delta.len();
            if scratch.round_edges.len() * 4 >= m {
                scratch.round_edges.clear();
                for e in 0..m {
                    if scratch.delta[e] > 0 {
                        scratch.round_edges.push(e);
                    }
                }
            } else {
                scratch.round_edges.sort_unstable();
            }
            for i in 0..scratch.round_edges.len() {
                let e = scratch.round_edges[i];
                let d = scratch.delta[e];
                scratch.delta[e] = 0;
                if scratch.support[e] == 0 {
                    scratch.touched_edges.push(e);
                }
                scratch.support[e] = (scratch.support[e] + d).min(2);
                if scratch.support[e] == 2 {
                    let edge = &graph.edges()[e];
                    let (a, b) = (edge.a, edge.b);
                    if a == boundary || b == boundary {
                        let inner = if a == boundary { b } else { a };
                        Self::enter_cluster(graph, scratch, inner);
                        let root = scratch.find(inner);
                        scratch.touches_boundary[root] = true;
                    } else {
                        Self::enter_cluster(graph, scratch, a);
                        Self::enter_cluster(graph, scratch, b);
                        scratch.union(a, b);
                        trace.merges += 1;
                    }
                }
            }
        }

        // --- Peeling stage ------------------------------------------------
        // Erasure = fully grown edges. `touched_edges` holds every edge
        // whose support went nonzero, each pushed once; sorting and
        // filtering it equals the old ascending all-edge scan. Build a
        // spanning forest with BFS, seeding from the boundary first so
        // boundary-touching trees are rooted at the boundary (which absorbs
        // leftover parity).
        let m = scratch.support.len();
        if scratch.touched_edges.len() * 4 >= m {
            scratch.touched_edges.clear();
            for e in 0..m {
                if scratch.support[e] > 0 {
                    scratch.touched_edges.push(e);
                }
            }
        } else {
            scratch.touched_edges.sort_unstable();
        }
        for i in 0..scratch.touched_edges.len() {
            let e = scratch.touched_edges[i];
            if scratch.support[e] == 2 {
                scratch.erased.push(e);
            }
        }
        scratch.forest_seeds.clear();
        for i in 0..scratch.erased.len() {
            let e = scratch.erased[i];
            let edge = &graph.edges()[e];
            scratch.adj[edge.a].push(e);
            scratch.adj[edge.b].push(e);
            scratch.forest_seeds.push(edge.a);
            scratch.forest_seeds.push(edge.b);
        }
        trace.erased_edges += scratch.erased.len() as u64;
        if !scratch.adj[boundary].is_empty() {
            Self::bfs(graph, scratch, boundary);
        }
        // Erased-edge endpoints are the only nodes with nonempty adjacency;
        // visiting them ascending equals the old all-node seed scan.
        let n = graph.num_nodes();
        if scratch.forest_seeds.len() * 2 >= n {
            scratch.forest_seeds.clear();
            for node in 0..n {
                if !scratch.adj[node].is_empty() {
                    scratch.forest_seeds.push(node);
                }
            }
        } else {
            scratch.forest_seeds.sort_unstable();
            scratch.forest_seeds.dedup();
        }
        for i in 0..scratch.forest_seeds.len() {
            let node = scratch.forest_seeds[i];
            if !scratch.visited[node] && !scratch.adj[node].is_empty() {
                Self::bfs(graph, scratch, node);
            }
        }
        trace.forest_visits += scratch.order.len() as u64;

        // Peel leaves inward: process nodes in reverse BFS order; each node
        // (except roots) has a parent edge. If the node still carries an
        // event, the parent edge joins the correction and the event moves to
        // the parent.
        for i in (0..scratch.order.len()).rev() {
            let node = scratch.order[i];
            if let Some(pe) = scratch.parent_edge[node] {
                if scratch.is_event[node] {
                    scratch.is_event[node] = false;
                    let parent = graph.other_end(pe, node);
                    if parent != boundary {
                        scratch.is_event[parent] = !scratch.is_event[parent];
                    }
                    edges_out.push(pe);
                }
            }
        }
        trace.peeled_edges += edges_out.len() as u64;

        // --- Undo pass ----------------------------------------------------
        // Restore the scratch to its post-reset state so the next
        // `decode_edges_prepared` call starts clean without an O(n + m)
        // reset. Peeling already returns `is_event` to all-false when every
        // event pairs up; clear it anyway so an incomplete pairing can
        // never leak into the next shot.
        for i in 0..scratch.cluster_nodes.len() {
            let x = scratch.cluster_nodes[i];
            debug_assert!(
                !scratch.is_event[x],
                "union-find left unpaired events: growth stage incomplete"
            );
            scratch.is_event[x] = false;
            scratch.in_cluster[x] = false;
            scratch.parent[x] = x;
            scratch.rank[x] = 0;
            scratch.odd[x] = false;
            scratch.touches_boundary[x] = false;
            scratch.unsat[x] = 0;
        }
        scratch.cluster_nodes.clear();
        for i in 0..scratch.order.len() {
            let x = scratch.order[i];
            scratch.visited[x] = false;
            scratch.parent_edge[x] = None;
            scratch.adj[x].clear();
        }
        scratch.order.clear();
        for i in 0..scratch.touched_edges.len() {
            scratch.support[scratch.touched_edges[i]] = 0;
        }
        scratch.touched_edges.clear();
        scratch.erased.clear();
        scratch.active_members.clear();
        scratch.forest_seeds.clear();
    }

    /// Plane-batched decode: transposes the node-major event planes into
    /// per-shot event lists (CSR layout, one pass), then runs the core
    /// decode shot by shot with fully reused working memory. `on_shot`
    /// receives each shot's [`UfTrace`] so backends can price the work.
    ///
    /// The output is bit-identical to scattering the planes and calling
    /// [`Decoder::decode_many`]: the CSR fill visits nodes in ascending
    /// order, so each shot's events arrive sorted exactly as the sparse
    /// path produces them, and the XOR-fold below emits flips in the same
    /// ascending order as [`Correction::from_edges`]'s `BTreeSet`.
    pub(crate) fn decode_planes_impl(
        &self,
        graph: &DecodingGraph,
        planes: &EventPlanes<'_>,
        scratch: &mut UfScratch,
        out: &mut CorrectionBatch,
        mut on_shot: impl FnMut(&UfTrace),
    ) {
        let shots = planes.shots();
        out.clear();

        // CSR transpose: per-shot event counts, prefix sums, fill.
        let mut offsets = vec![0usize; shots + 1];
        for node in 0..planes.nodes() {
            for (b, &word) in planes.plane(node).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let shot = b * 64 + bits.trailing_zeros() as usize;
                    offsets[shot + 1] += 1;
                    bits &= bits - 1;
                }
            }
        }
        for s in 0..shots {
            offsets[s + 1] += offsets[s];
        }
        let total = offsets[shots];
        let mut events_flat = vec![0 as NodeId; total];
        let mut cursor = offsets.clone();
        for node in 0..planes.nodes() {
            for (b, &word) in planes.plane(node).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let shot = b * 64 + bits.trailing_zeros() as usize;
                    events_flat[cursor[shot]] = node;
                    cursor[shot] += 1;
                    bits &= bits - 1;
                }
            }
        }

        // Per-shot decode with reused scratch, edge buffer and flip marks.
        // The scratch is reset once for the whole batch; each prepared
        // decode cleans up after itself, so per-shot cost scales with the
        // clusters grown rather than with the graph.
        scratch.reset_for(graph);
        let mut edges: Vec<EdgeId> = Vec::new();
        let mut marked: Vec<bool> = Vec::new();
        let mut touched: Vec<usize> = Vec::new();
        for shot in 0..shots {
            let events = &events_flat[offsets[shot]..offsets[shot + 1]];
            let mut trace = UfTrace::default();
            self.decode_edges_prepared(graph, events, scratch, &mut trace, &mut edges);
            on_shot(&trace);

            // XOR-fold data faults without a per-shot set: mark parity in a
            // reusable bool table, then emit odd-parity qubits ascending.
            touched.clear();
            for &e in &edges {
                if let Fault::Data(q) = graph.edges()[e].fault {
                    if q >= marked.len() {
                        marked.resize(q + 1, false);
                    }
                    if !marked[q] {
                        touched.push(q);
                        marked[q] = true;
                    } else {
                        marked[q] = false;
                    }
                }
            }
            touched.sort_unstable();
            for &q in &touched {
                if marked[q] {
                    out.push_flip(q);
                    marked[q] = false;
                }
            }
            out.finish_shot();
        }
    }

    /// Cluster bookkeeping for `node` after one of its incident edges
    /// saturated: a node already in a cluster loses one unsaturated edge
    /// (the saturating one, which its count necessarily still included);
    /// a node entering now counts its unsaturated incident edges — the
    /// saturating edge is already at full support, so it is excluded.
    fn enter_cluster(graph: &DecodingGraph, scratch: &mut UfScratch, node: NodeId) {
        if scratch.in_cluster[node] {
            debug_assert!(scratch.unsat[node] > 0, "saturated edge not in count");
            scratch.unsat[node] -= 1;
        } else {
            scratch.in_cluster[node] = true;
            scratch.cluster_nodes.push(node);
            let mut unsat = 0u8;
            for &e in graph.incident(node) {
                if scratch.support[e] < 2 {
                    unsat += 1;
                }
            }
            scratch.unsat[node] = unsat;
        }
    }

    fn bfs(graph: &DecodingGraph, scratch: &mut UfScratch, start: NodeId) {
        scratch.visited[start] = true;
        scratch.queue.push_back(start);
        while let Some(u) = scratch.queue.pop_front() {
            scratch.order.push(u);
            for i in 0..scratch.adj[u].len() {
                let e = scratch.adj[u][i];
                let v = graph.other_end(e, u);
                if !scratch.visited[v] {
                    scratch.visited[v] = true;
                    scratch.parent_edge[v] = Some(e);
                    scratch.queue.push_back(v);
                }
            }
        }
    }
}

impl Decoder for UnionFindDecoder {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        self.decode_with(graph, events, &mut UfScratch::new())
    }

    fn decode_many(&self, graph: &DecodingGraph, event_sets: &[Vec<NodeId>]) -> Vec<Correction> {
        let mut scratch = UfScratch::new();
        event_sets
            .iter()
            .map(|ev| self.decode_with(graph, ev, &mut scratch))
            .collect()
    }

    fn decode_planes(
        &self,
        graph: &DecodingGraph,
        planes: &EventPlanes<'_>,
        out: &mut CorrectionBatch,
    ) {
        let mut scratch = UfScratch::new();
        self.decode_planes_impl(graph, planes, &mut scratch, out, |_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::{correction_explains_events, ExactMatchingDecoder};
    use crate::lattice::{RotatedLattice, StabKind};
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    #[test]
    fn empty_events_trivial() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let c = UnionFindDecoder::new().decode(&g, &[]);
        assert!(c.edges.is_empty());
    }

    #[test]
    fn single_event_reaches_boundary() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        for c_idx in 0..g.num_checks() {
            let events = [g.node(0, c_idx)];
            let c = UnionFindDecoder::new().decode(&g, &events);
            assert!(correction_explains_events(&g, &c, &events), "check {c_idx}");
        }
    }

    #[test]
    fn pair_of_adjacent_events() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let e = g
            .edges()
            .iter()
            .find(|e| !g.is_boundary(e.a) && !g.is_boundary(e.b))
            .unwrap();
        let events = [e.a, e.b];
        let c = UnionFindDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
    }

    #[test]
    fn temporal_pair_needs_no_data_flip() {
        // A measurement error shows up as two temporal events on the same
        // check; the correction should involve no data flips.
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let events = [g.node(0, 4), g.node(1, 4)];
        let c = UnionFindDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(c.weight(), 0, "temporal match should flip no data qubits");
    }

    #[test]
    fn random_event_sets_always_explained() {
        let mut rng = StdRng::seed_from_u64(99);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let uf = UnionFindDecoder::new();
        for k in [1usize, 2, 3, 5, 8, 12] {
            for _ in 0..20 {
                let events: Vec<NodeId> = all_nodes.choose_multiple(&mut rng, k).copied().collect();
                let c = uf.decode(&g, &events);
                assert!(
                    correction_explains_events(&g, &c, &events),
                    "k = {k}, events = {events:?}"
                );
            }
        }
    }

    #[test]
    fn decode_is_deterministic_across_runs_and_threads() {
        // Regression test for the growth-stage grouping: cluster processing
        // order must be the deterministic (root, node) order, never a
        // hashed-map order that follows the per-process RandomState. The
        // matching must be bit-identical however often and wherever it is
        // computed.
        let mut rng = StdRng::seed_from_u64(2024);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let event_sets: Vec<Vec<NodeId>> = (0..40)
            .map(|_| all_nodes.choose_multiple(&mut rng, 6).copied().collect())
            .collect();

        let decode_all = |sets: &[Vec<NodeId>]| -> Vec<Correction> {
            let lat = RotatedLattice::new(5);
            let g = DecodingGraph::new(&lat, StabKind::Z, 4);
            let uf = UnionFindDecoder::new();
            sets.iter().map(|ev| uf.decode(&g, ev)).collect()
        };

        let first = decode_all(&event_sets);
        let second = decode_all(&event_sets);
        assert_eq!(first, second, "same-thread decode must be reproducible");

        // A spawned thread gets a freshly seeded RandomState for any
        // hashed collections it creates — decode there too.
        let sets = event_sets.clone();
        let third = std::thread::spawn(move || decode_all(&sets))
            .join()
            .expect("decode thread must not panic");
        assert_eq!(first, third, "cross-thread decode must be reproducible");
    }

    #[test]
    fn scratch_reuse_matches_fresh_decodes() {
        // decode_many (one reused workspace) must be bit-identical to
        // per-shot decode (fresh workspace each time), including when the
        // reused scratch has seen larger event sets first.
        let mut rng = StdRng::seed_from_u64(77);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 5);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let mut event_sets: Vec<Vec<NodeId>> = (0..30)
            .map(|i| {
                let k = [12usize, 6, 1, 0, 8, 3][i % 6];
                all_nodes.choose_multiple(&mut rng, k).copied().collect()
            })
            .collect();
        event_sets.push(Vec::new());
        let uf = UnionFindDecoder::new();
        let batch = uf.decode_many(&g, &event_sets);
        let fresh: Vec<Correction> = event_sets.iter().map(|ev| uf.decode(&g, ev)).collect();
        assert_eq!(batch, fresh);
    }

    #[test]
    fn scratch_survives_graph_size_changes() {
        // One workspace used across graphs of different sizes must resize
        // correctly in both directions.
        let uf = UnionFindDecoder::new();
        let mut scratch = UfScratch::new();
        for rounds in [4usize, 1, 3] {
            let lat = RotatedLattice::new(5);
            let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
            let events = [g.node(0, 2)];
            let with_scratch = uf.decode_with(&g, &events, &mut scratch);
            let fresh = uf.decode(&g, &events);
            assert_eq!(with_scratch, fresh, "rounds = {rounds}");
            assert!(correction_explains_events(&g, &with_scratch, &events));
        }
    }

    #[test]
    fn plane_decode_matches_sparse_decode() {
        // decode_planes (CSR transpose + alloc-free XOR fold) must be
        // bit-identical to scattering and calling decode_many, including
        // shots with no events and a non-multiple-of-64 shot count.
        let mut rng = StdRng::seed_from_u64(4242);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 4);
        let nodes = g.boundary();
        let shots = 150usize; // 3 blocks, 22 live bits in the tail
        let blocks = shots.div_ceil(64);
        let tail_mask = (1u64 << (shots - (blocks - 1) * 64)) - 1;

        let mut planes = vec![0u64; nodes * blocks];
        for shot in 0..shots {
            let k = [0usize, 1, 2, 4, 7][shot % 5];
            let all: Vec<NodeId> = (0..nodes).collect();
            for &node in all.choose_multiple(&mut rng, k) {
                planes[node * blocks + shot / 64] |= 1u64 << (shot % 64);
            }
        }
        for node in 0..nodes {
            planes[node * blocks + blocks - 1] &= tail_mask;
        }

        let ev = EventPlanes::new(&planes, nodes, blocks, shots);
        let uf = UnionFindDecoder::new();
        let mut batch = CorrectionBatch::new();
        uf.decode_planes(&g, &ev, &mut batch);

        let mut sets: Vec<Vec<NodeId>> = Vec::new();
        ev.scatter_into(&mut sets);
        let sparse = uf.decode_many(&g, &sets);

        assert_eq!(batch.shots(), shots);
        for (shot, c) in sparse.iter().enumerate() {
            let want: Vec<usize> = c.data_flips.iter().copied().collect();
            assert_eq!(batch.flips_of(shot), want.as_slice(), "shot {shot}");
        }
        assert_eq!(
            batch.total_flips(),
            sparse.iter().map(Correction::weight).sum::<usize>()
        );
    }

    #[test]
    fn union_find_weight_is_close_to_exact_for_small_cases() {
        // UF is not guaranteed minimum weight, but for isolated small event
        // sets it must still produce a *valid* correction whose weight is at
        // most a small factor above optimal. We assert validity and a 3x
        // bound, which is far looser than observed.
        let mut rng = StdRng::seed_from_u64(123);
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        let all_nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let uf = UnionFindDecoder::new();
        let exact = ExactMatchingDecoder::new();
        for _ in 0..30 {
            let events: Vec<NodeId> = all_nodes.choose_multiple(&mut rng, 4).copied().collect();
            let cu = uf.decode(&g, &events);
            let ce = exact.decode(&g, &events);
            assert!(correction_explains_events(&g, &cu, &events));
            assert!(correction_explains_events(&g, &ce, &events));
            assert!(
                cu.edges.len() <= 3 * ce.edges.len().max(1),
                "UF used {} edges vs exact {}",
                cu.edges.len(),
                ce.edges.len()
            );
        }
    }
}
