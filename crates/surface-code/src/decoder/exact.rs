//! Brute-force minimum-weight perfect matching.
//!
//! The paper's global decoder is Fowler's MWPM. A full blossom
//! implementation is unnecessary here because the decoding graph's matching
//! problem has a special structure (events pair with each other or with the
//! boundary); for the small event counts used in validation we can solve it
//! *exactly* with memoized dynamic programming over event subsets in
//! `O(2^k · k)` time. This gives ground truth for the scalable
//! [union-find decoder](super::UnionFindDecoder).

use super::{Correction, Decoder};
use crate::graph::{DecodingGraph, NodeId};

/// Exact minimum-weight matcher (use only for ≲ 16 detection events).
///
/// # Example
///
/// ```
/// use quest_surface::{DecodingGraph, ExactMatchingDecoder, RotatedLattice, StabKind};
/// use quest_surface::decoder::{correction_explains_events, Decoder};
///
/// let lat = RotatedLattice::new(3);
/// let g = DecodingGraph::new(&lat, StabKind::Z, 1);
/// let events = [g.node(0, 0), g.node(0, 1)];
/// let c = ExactMatchingDecoder::new().decode(&g, &events);
/// assert!(correction_explains_events(&g, &c, &events));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactMatchingDecoder {
    _private: (),
}

impl ExactMatchingDecoder {
    /// Creates the decoder.
    pub fn new() -> ExactMatchingDecoder {
        ExactMatchingDecoder::default()
    }

    /// Minimum total matching cost for the event set (diagnostic; the same
    /// DP that `decode` uses).
    ///
    /// # Panics
    ///
    /// Panics if there are more than 20 events (the DP table would be
    /// excessive) or if any event is the boundary node.
    pub fn matching_cost(&self, graph: &DecodingGraph, events: &[NodeId]) -> usize {
        self.solve(graph, events).0
    }

    fn solve(&self, graph: &DecodingGraph, events: &[NodeId]) -> (usize, Vec<Pairing>) {
        let k = events.len();
        assert!(k <= 20, "exact matcher limited to 20 events, got {k}");
        for &e in events {
            assert!(!graph.is_boundary(e), "boundary node cannot be an event");
        }
        // Pairwise and boundary distances.
        let mut pair = vec![vec![0usize; k]; k];
        let mut bound = vec![0usize; k];
        for i in 0..k {
            bound[i] = graph.distance(events[i], graph.boundary());
            for j in i + 1..k {
                pair[i][j] = graph.distance(events[i], events[j]);
            }
        }
        // DP over subsets: best[mask] = min cost to match all events in mask.
        let full = 1usize << k;
        const INF: usize = usize::MAX / 4;
        let mut best = vec![INF; full];
        let mut choice: Vec<Pairing> = vec![Pairing::None; full];
        best[0] = 0;
        for mask in 1..full {
            // Lowest set bit must be matched now (canonical ordering).
            let i = mask.trailing_zeros() as usize;
            let rest = mask & !(1 << i);
            // Option 1: match i to the boundary.
            if best[rest] + bound[i] < best[mask] {
                best[mask] = best[rest] + bound[i];
                choice[mask] = Pairing::Boundary(i);
            }
            // Option 2: match i with some j in rest.
            let mut jm = rest;
            while jm != 0 {
                let j = jm.trailing_zeros() as usize;
                jm &= jm - 1;
                let sub = rest & !(1 << j);
                let cost = best[sub] + pair[i.min(j)][i.max(j)];
                if cost < best[mask] {
                    best[mask] = cost;
                    choice[mask] = Pairing::Pair(i, j);
                }
            }
        }
        // Reconstruct.
        let mut pairs = Vec::new();
        let mut mask = full - 1;
        while mask != 0 {
            let c = choice[mask];
            pairs.push(c);
            match c {
                Pairing::Boundary(i) => mask &= !(1 << i),
                Pairing::Pair(i, j) => mask &= !((1 << i) | (1 << j)),
                Pairing::None => unreachable!("unfilled DP cell"),
            }
        }
        (best[full - 1], pairs)
    }
}

#[derive(Debug, Clone, Copy)]
enum Pairing {
    None,
    Boundary(usize),
    Pair(usize, usize),
}

impl Decoder for ExactMatchingDecoder {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        if events.is_empty() {
            return Correction::default();
        }
        let (_, pairs) = self.solve(graph, events);
        let mut edges = Vec::new();
        for p in pairs {
            match p {
                Pairing::Boundary(i) => {
                    edges.extend(
                        graph
                            .shortest_path(events[i], graph.boundary())
                            .expect("graph is connected"),
                    );
                }
                Pairing::Pair(i, j) => {
                    edges.extend(
                        graph
                            .shortest_path(events[i], events[j])
                            .expect("graph is connected"),
                    );
                }
                Pairing::None => unreachable!(),
            }
        }
        Correction::from_edges(graph, edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::correction_explains_events;
    use crate::lattice::{RotatedLattice, StabKind};

    #[test]
    fn empty_events_give_empty_correction() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let c = ExactMatchingDecoder::new().decode(&g, &[]);
        assert!(c.edges.is_empty());
    }

    #[test]
    fn single_event_matches_to_boundary() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let events = [g.node(0, 0)];
        let c = ExactMatchingDecoder::new().decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(c.weight(), 1, "d=3 edge check is one hop from boundary");
    }

    #[test]
    fn adjacent_pair_matches_internally() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        // Find two checks joined by a single spatial edge.
        let e = g
            .edges()
            .iter()
            .find(|e| !g.is_boundary(e.a) && !g.is_boundary(e.b))
            .unwrap();
        let events = [e.a, e.b];
        let dec = ExactMatchingDecoder::new();
        let c = dec.decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(dec.matching_cost(&g, &events), 1);
    }

    #[test]
    fn exact_is_never_worse_than_any_single_pairing() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 2);
        let events = [g.node(0, 0), g.node(0, 5), g.node(1, 3), g.node(1, 7)];
        let dec = ExactMatchingDecoder::new();
        let cost = dec.matching_cost(&g, &events);
        // All-boundary pairing is an upper bound.
        let all_boundary: usize = events.iter().map(|&e| g.distance(e, g.boundary())).sum();
        assert!(cost <= all_boundary);
        let c = dec.decode(&g, &events);
        assert!(correction_explains_events(&g, &c, &events));
    }
}
