//! Cycle-accurate model of a pipelined hardware union-find decoder.
//!
//! Das et al. ("A Scalable Decoder Micro-architecture for Fault-Tolerant
//! Quantum Computing", PAPERS.md) decompose the union-find decoder into
//! a three-stage hardware pipeline: a **spanning-tree** (graph-generator)
//! stage that grows and merges clusters in on-chip node/edge memories, a
//! **DFS** stage that walks the grown erasure into a peeling forest, and
//! a **correction** stage that emits the data-qubit flips. This module
//! models that micro-architecture on top of the software
//! [`UnionFindDecoder`]: every decode runs the *exact* software
//! algorithm with tracing enabled, so the corrections are bit-identical
//! to [`UfBackend`](super::backend::UfBackend) by construction, and the
//! trace's work counters are then priced against the staged hardware
//! model below.
//!
//! # Cycle model
//!
//! The pipeline clocks at the 10 GHz SFQ rate used throughout the
//! workspace's JJ accounting. Per decode:
//!
//! * spanning-tree stage — each active-cluster member visit reads one
//!   node entry ([`NODE_ENTRY_BITS`] wide) from the node bank, each
//!   incident-edge touch reads one edge entry ([`EDGE_ENTRY_BITS`]) from
//!   the edge bank (both priced at their bank's
//!   [`read_latency_cycles`]), and each cluster merge costs
//!   [`MERGE_CYCLES`] for the root update;
//! * DFS stage — building the forest reads each erased edge once and
//!   visits each forest node once, one edge-bank read each;
//! * correction stage — one cycle per peeled edge to XOR the flip into
//!   the correction register;
//! * plus [`PIPELINE_STAGES`] fill cycles of end-to-end latency.
//!
//! Bank sizes — and therefore the read latencies and the JJ footprint —
//! are pure functions of the decoding graph, and the trace counters are
//! pure functions of `(graph, events)`, so cycle counts are exactly
//! reproducible run to run (asserted by the equivalence property tests).

use super::backend::{read_latency_cycles, CostReport, DecoderBackend, JJ_PER_BIT, JJ_PER_CHANNEL};
use super::union_find::{UfScratch, UfTrace, UnionFindDecoder};
use super::Correction;
use crate::graph::{DecodingGraph, NodeId};

/// Bits per node entry in the spanning-tree stage's node bank: a parent
/// pointer and rank plus the parity/boundary/cluster flag bits, padded
/// to one 32-bit word (`quest_core::jj::WORD_BITS`).
pub const NODE_ENTRY_BITS: u64 = 32;

/// Bits per edge entry in the edge bank: 2 support bits plus grow-stamp
/// and erasure flags, padded to a byte.
pub const EDGE_ENTRY_BITS: u64 = 8;

/// Cycles per cluster merge (read both roots, write the union).
pub const MERGE_CYCLES: u64 = 2;

/// Depth of the decode pipeline (spanning-tree → DFS → correction).
pub const PIPELINE_STAGES: u64 = 3;

/// The pipelined hardware union-find decoder backend.
///
/// Corrections are produced by the software union-find itself (traced),
/// so they are pinned bit-identical to [`UnionFindDecoder`]; only the
/// reported cost differs, following the module-level hardware model.
#[derive(Debug, Clone, Default)]
pub struct PipelinedUfDecoder {
    decoder: UnionFindDecoder,
    scratch: UfScratch,
    cost: CostReport,
}

impl PipelinedUfDecoder {
    /// Creates the backend with empty scratch (sized on first decode).
    pub fn new() -> PipelinedUfDecoder {
        PipelinedUfDecoder::default()
    }

    /// JJ footprint of the pipeline sized for `graph`: the node and edge
    /// banks at `JJ_PER_BIT` each, plus one `JJ_PER_CHANNEL` of
    /// sequencing overhead per pipeline stage.
    pub fn jj_count(graph: &DecodingGraph) -> u64 {
        let node_bits = graph.num_nodes() as u64 * NODE_ENTRY_BITS;
        let edge_bits = graph.edges().len() as u64 * EDGE_ENTRY_BITS;
        (node_bits + edge_bits) * JJ_PER_BIT + PIPELINE_STAGES * JJ_PER_CHANNEL
    }

    /// Cycles one traced decode takes through the pipeline sized for
    /// `graph` (see the module docs for the stage breakdown).
    pub fn decode_cycles(graph: &DecodingGraph, trace: &UfTrace) -> u64 {
        let node_read = read_latency_cycles(graph.num_nodes() as u64 * NODE_ENTRY_BITS);
        let edge_read = read_latency_cycles(graph.edges().len() as u64 * EDGE_ENTRY_BITS);
        let spanning_tree = trace.member_visits * node_read
            + trace.edge_touches * edge_read
            + trace.merges * MERGE_CYCLES;
        let dfs = (trace.erased_edges + trace.forest_visits) * edge_read;
        let correction = trace.peeled_edges;
        PIPELINE_STAGES + spanning_tree + dfs + correction
    }
}

impl DecoderBackend for PipelinedUfDecoder {
    fn name(&self) -> &'static str {
        "pipelined-uf"
    }

    fn decode(&mut self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        let mut trace = UfTrace::default();
        let correction = self
            .decoder
            .decode_traced(graph, events, &mut self.scratch, &mut trace);
        self.cost.record(Self::decode_cycles(graph, &trace), false);
        self.cost.jj_count = self.cost.jj_count.max(Self::jj_count(graph));
        correction
    }

    fn cost(&self) -> CostReport {
        self.cost
    }

    fn reset_cost(&mut self) {
        self.cost = CostReport::default();
    }

    fn clone_box(&self) -> Box<dyn DecoderBackend> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::Decoder;
    use crate::lattice::{RotatedLattice, StabKind};
    use proptest::prelude::*;

    #[test]
    fn jj_and_cycle_model_scales_with_the_graph() {
        let small = DecodingGraph::new(&RotatedLattice::new(3), StabKind::Z, 1);
        let large = DecodingGraph::new(&RotatedLattice::new(7), StabKind::Z, 7);
        assert!(PipelinedUfDecoder::jj_count(&large) > PipelinedUfDecoder::jj_count(&small));
        let trace = UfTrace {
            growth_rounds: 2,
            member_visits: 4,
            edge_touches: 12,
            merges: 1,
            erased_edges: 3,
            forest_visits: 4,
            peeled_edges: 2,
        };
        // The larger graph's deeper banks make the same work slower.
        assert!(
            PipelinedUfDecoder::decode_cycles(&large, &trace)
                > PipelinedUfDecoder::decode_cycles(&small, &trace)
        );
    }

    #[test]
    fn empty_syndrome_costs_only_the_pipeline_fill() {
        let g = DecodingGraph::new(&RotatedLattice::new(3), StabKind::Z, 1);
        let mut backend = PipelinedUfDecoder::new();
        let c = backend.decode(&g, &[]);
        assert!(c.edges.is_empty());
        assert_eq!(backend.cost().cycles, PIPELINE_STAGES);
    }

    /// Distances the equivalence property sweeps (ISSUE 7 satellite:
    /// d ∈ {3, 5, 7}).
    const DISTANCES: [usize; 3] = [3, 5, 7];

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Satellite acceptance: on random syndromes at d ∈ {3, 5, 7},
        /// the pipelined model's corrections are bit-for-bit the
        /// software union-find's, and its cycle count is deterministic
        /// across independent decodes of the same syndrome.
        #[test]
        fn matches_software_union_find_bit_for_bit(
            d_idx in 0usize..DISTANCES.len(),
            rounds in 1usize..4,
            picks in proptest::collection::vec(0usize..10_000, 0..12),
        ) {
            let d = DISTANCES[d_idx];
            let lat = RotatedLattice::new(d);
            let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
            let mut events: Vec<usize> = picks
                .iter()
                .map(|p| p % g.boundary())
                .collect();
            events.sort_unstable();
            events.dedup();

            let software = UnionFindDecoder::new().decode(&g, &events);
            let mut first = PipelinedUfDecoder::new();
            let hardware = first.decode(&g, &events);
            prop_assert_eq!(&software, &hardware, "corrections diverged at d={}", d);

            let mut second = PipelinedUfDecoder::new();
            second.decode(&g, &events);
            prop_assert_eq!(
                first.cost(),
                second.cost(),
                "cycle counts nondeterministic at d={}",
                d
            );
            prop_assert!(first.cost().cycles >= PIPELINE_STAGES);
            prop_assert_eq!(first.cost().jj_count, PipelinedUfDecoder::jj_count(&g));
        }
    }
}
