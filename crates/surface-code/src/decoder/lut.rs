//! Local lookup-table decoder — the MCE's error-decoder pipeline.
//!
//! Per the paper (§4.2): *"The error decoder collects the syndrome
//! measurement data and performs a limited local error decoding with a
//! lookup table to correct frequently occurring isolated single-qubit
//! errors."* Complex patterns are left to the global decoder in the master
//! controller.
//!
//! The table maps the detection-event pattern of every possible single
//! data-qubit error (one or two adjacent events within a round) and every
//! single measurement error (a temporal event pair) to its correction. The
//! decoder succeeds only when the observed events can be *exactly* tiled by
//! non-overlapping single-fault patterns; anything else is escalated.

use super::Correction;
use crate::graph::{DecodingGraph, EdgeId, NodeId};
use std::collections::{BTreeMap, BTreeSet};

/// Lookup-table decoder for isolated single faults.
///
/// Returns `None` (escalate to the global decoder) whenever the syndrome
/// is not a disjoint union of single-fault patterns.
///
/// # Example
///
/// ```
/// use quest_surface::{DecodingGraph, LutDecoder, RotatedLattice, StabKind};
///
/// let lat = RotatedLattice::new(3);
/// let g = DecodingGraph::new(&lat, StabKind::Z, 1);
/// let lut = LutDecoder::new(&g);
/// // A single boundary event is an isolated single-qubit error: handled.
/// assert!(lut.try_decode(&[g.node(0, 0)]).is_some());
/// ```
#[derive(Debug, Clone)]
pub struct LutDecoder {
    /// Sorted event pattern → edge producing it. Single-fault patterns have
    /// one or two events.
    table: BTreeMap<Vec<NodeId>, EdgeId>,
    /// For each node, the single-fault patterns containing it.
    patterns_at: BTreeMap<NodeId, Vec<Vec<NodeId>>>,
    num_nodes: usize,
    boundary: NodeId,
    /// Table capacity statistics: number of entries (for the paper's
    /// feasibility accounting).
    entries: usize,
}

impl LutDecoder {
    /// Builds the table for a decoding graph by enumerating all single
    /// faults.
    pub fn new(graph: &DecodingGraph) -> LutDecoder {
        let mut table = BTreeMap::new();
        let mut patterns_at: BTreeMap<NodeId, Vec<Vec<NodeId>>> = BTreeMap::new();
        for (i, e) in graph.edges().iter().enumerate() {
            let mut pattern: Vec<NodeId> = [e.a, e.b]
                .into_iter()
                .filter(|&n| !graph.is_boundary(n))
                .collect();
            pattern.sort_unstable();
            for &n in &pattern {
                patterns_at.entry(n).or_default().push(pattern.clone());
            }
            table.entry(pattern).or_insert(i);
        }
        let entries = table.len();
        LutDecoder {
            table,
            patterns_at,
            num_nodes: graph.num_nodes(),
            boundary: graph.boundary(),
            entries,
        }
    }

    /// Number of table entries (one per distinct single-fault pattern).
    pub fn num_entries(&self) -> usize {
        self.entries
    }

    /// Attempts to decode `events` as a disjoint union of isolated single
    /// faults. Returns the matched edges, or `None` to escalate.
    ///
    /// # Panics
    ///
    /// Panics if `events` contains the boundary node or out-of-range ids.
    pub fn try_decode(&self, events: &[NodeId]) -> Option<Vec<EdgeId>> {
        for &e in events {
            assert!(e < self.num_nodes && e != self.boundary, "bad event node");
        }
        let mut remaining: BTreeSet<NodeId> = events.iter().copied().collect();
        let mut edges = Vec::new();
        while let Some(&n) = remaining.iter().next() {
            // Candidate patterns at n whose events are all still pending and
            // *isolated*: consuming them must not break another pattern —
            // for the LUT this simply means an exact cover step.
            let candidates = self.patterns_at.get(&n)?;
            // Prefer two-event patterns (internal faults) over boundary
            // singles only when both events are present; otherwise fall back
            // to the boundary single.
            let chosen = candidates
                .iter()
                .filter(|pat| pat.iter().all(|q| remaining.contains(q)))
                .max_by_key(|pat| pat.len())?;
            for q in chosen {
                remaining.remove(q);
            }
            edges.push(self.table[chosen]);
        }
        Some(edges)
    }

    /// Like [`LutDecoder::try_decode`] but returns a full [`Correction`].
    pub fn try_correction(&self, graph: &DecodingGraph, events: &[NodeId]) -> Option<Correction> {
        self.try_decode(events)
            .map(|edges| Correction::from_edges(graph, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::correction_explains_events;
    use crate::graph::Fault;
    use crate::lattice::{RotatedLattice, StabKind};

    fn setup(d: usize, rounds: usize) -> (DecodingGraph, LutDecoder) {
        let lat = RotatedLattice::new(d);
        let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
        let lut = LutDecoder::new(&g);
        (g, lut)
    }

    #[test]
    fn every_single_fault_is_decoded() {
        let (g, lut) = setup(5, 2);
        for e in g.edges() {
            let events: Vec<NodeId> = [e.a, e.b]
                .into_iter()
                .filter(|&n| !g.is_boundary(n))
                .collect();
            let c = lut.try_correction(&g, &events).expect("single fault");
            assert!(correction_explains_events(&g, &c, &events));
        }
    }

    #[test]
    fn two_isolated_faults_are_decoded() {
        let (g, lut) = setup(5, 1);
        // Two internal spatial edges far apart.
        let internal: Vec<&crate::graph::DecodingEdge> = g
            .edges()
            .iter()
            .filter(|e| !g.is_boundary(e.a) && !g.is_boundary(e.b))
            .collect();
        let e1 = internal.first().unwrap();
        let e2 = internal.last().unwrap();
        // Ensure disjoint node sets.
        assert!(e1.a != e2.a && e1.a != e2.b && e1.b != e2.a && e1.b != e2.b);
        let events = vec![e1.a, e1.b, e2.a, e2.b];
        let c = lut
            .try_correction(&g, &events)
            .expect("two isolated faults");
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(c.weight(), 2);
    }

    #[test]
    fn error_chain_is_escalated_or_valid() {
        // A weight-2 chain produces two events two hops apart; the LUT may
        // explain each event with a boundary single on small codes, but if
        // it answers, the answer must be syndrome-consistent.
        let (g, lut) = setup(3, 1);
        let chain_events = vec![g.node(0, 0), g.node(0, 3)];
        match lut.try_correction(&g, &chain_events) {
            None => {} // escalated: acceptable
            Some(c) => assert!(correction_explains_events(&g, &c, &chain_events)),
        }
    }

    #[test]
    fn measurement_fault_pattern_known() {
        let (g, lut) = setup(3, 3);
        // Temporal edge events.
        let e = g
            .edges()
            .iter()
            .enumerate()
            .find(|(_, e)| matches!(e.fault, Fault::Measurement { .. }))
            .map(|(i, _)| i)
            .unwrap();
        let edge = &g.edges()[e];
        let events = vec![edge.a, edge.b];
        let c = lut.try_correction(&g, &events).unwrap();
        assert!(correction_explains_events(&g, &c, &events));
        assert_eq!(c.weight(), 0, "measurement error needs no data flip");
    }

    #[test]
    fn table_size_scales_with_edges() {
        let (g, lut) = setup(5, 1);
        assert!(lut.num_entries() <= g.edges().len());
        assert!(lut.num_entries() > 0);
    }

    #[test]
    fn empty_events_decode_to_nothing() {
        let (g, lut) = setup(3, 1);
        let c = lut.try_correction(&g, &[]).unwrap();
        assert!(c.edges.is_empty());
    }
}
