//! Batched global decoding.
//!
//! The master controller's global decoder receives escalations one at a
//! time in the single-threaded systems, but a concurrent runtime collects
//! escalations from many tiles per cycle and hands them to a worker pool
//! in batches. This module is that entry point: a batch of independent
//! [`DecodeJob`]s decoded against shared per-kind decoding graphs, with
//! each job resolved exactly as the one-at-a-time path resolves it
//! (single-round graph, same node numbering), so batching changes
//! throughput but never corrections.

use super::{Correction, Decoder};
use crate::graph::{DecodingGraph, NodeId};
use crate::lattice::{RotatedLattice, StabKind};

/// One escalated decode request: the detection events of a single round
/// on one tile's single-round decoding graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeJob {
    /// Stabilizer type of the escalating decoder pipeline.
    pub kind: StabKind,
    /// Detection-event nodes (single-round graph numbering: node id =
    /// check index).
    pub events: Vec<NodeId>,
}

/// Per-kind single-round decoding graphs, built once per lattice and
/// reused across batches (graph construction is the per-job overhead
/// worth amortizing; the graphs themselves are immutable).
#[derive(Debug, Clone)]
pub struct BatchGraphs {
    x: DecodingGraph,
    z: DecodingGraph,
}

impl BatchGraphs {
    /// Builds the two single-round graphs for a tile lattice.
    pub fn new(lattice: &RotatedLattice) -> BatchGraphs {
        BatchGraphs {
            x: DecodingGraph::new(lattice, StabKind::X, 1),
            z: DecodingGraph::new(lattice, StabKind::Z, 1),
        }
    }

    /// The graph for one stabilizer kind.
    pub fn graph(&self, kind: StabKind) -> &DecodingGraph {
        match kind {
            StabKind::X => &self.x,
            StabKind::Z => &self.z,
        }
    }
}

/// Decodes a batch of independent jobs, returning one correction per job
/// in input order. Equivalent to calling `decoder.decode` per job on a
/// fresh single-round graph of the job's kind.
pub fn decode_batch<D: Decoder>(
    decoder: &D,
    graphs: &BatchGraphs,
    jobs: &[DecodeJob],
) -> Vec<Correction> {
    jobs.iter()
        .map(|job| decoder.decode(graphs.graph(job.kind), &job.events))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::UnionFindDecoder;

    #[test]
    fn batch_matches_one_at_a_time() {
        let lat = RotatedLattice::new(5);
        let graphs = BatchGraphs::new(&lat);
        let uf = UnionFindDecoder::new();
        let jobs = vec![
            DecodeJob {
                kind: StabKind::Z,
                events: vec![0, 1],
            },
            DecodeJob {
                kind: StabKind::X,
                events: vec![2],
            },
            DecodeJob {
                kind: StabKind::Z,
                events: vec![3],
            },
            DecodeJob {
                kind: StabKind::Z,
                events: vec![],
            },
        ];
        let batched = decode_batch(&uf, &graphs, &jobs);
        assert_eq!(batched.len(), jobs.len());
        for (job, got) in jobs.iter().zip(&batched) {
            let fresh = DecodingGraph::new(&lat, job.kind, 1);
            let expected = uf.decode(&fresh, &job.events);
            assert_eq!(got, &expected, "batched decode diverged for {job:?}");
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let lat = RotatedLattice::new(3);
        let graphs = BatchGraphs::new(&lat);
        let out = decode_batch(&UnionFindDecoder::new(), &graphs, &[]);
        assert!(out.is_empty());
    }
}
