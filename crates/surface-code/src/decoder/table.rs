//! Complete lookup-table decoder: every possible syndrome precomputed.
//!
//! The MCE's error-decoder pipeline is "a lookup table" (§4.2). For small
//! codes the table can be *complete*: one minimum-weight correction per
//! possible syndrome pattern, giving O(1) decode with zero control flow —
//! exactly what a JJ-technology pipeline wants. The build cost is
//! `2^checks` exact decodes, so this is for per-round graphs of small
//! tiles (d = 3 has 4 checks per type → 16 entries; d = 5 has 12 → 4096).

use super::{Correction, Decoder, ExactMatchingDecoder};
use crate::graph::{DecodingGraph, NodeId};

/// Precomputed complete decoder for a single-round decoding graph.
///
/// # Example
///
/// ```
/// use quest_surface::decoder::{Decoder, TableDecoder};
/// use quest_surface::{DecodingGraph, RotatedLattice, StabKind};
///
/// let lat = RotatedLattice::new(3);
/// let g = DecodingGraph::new(&lat, StabKind::Z, 1);
/// let table = TableDecoder::build(&g);
/// assert_eq!(table.num_entries(), 16);
/// let c = table.decode(&g, &[g.node(0, 0)]);
/// assert_eq!(c.weight(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TableDecoder {
    num_checks: usize,
    /// Indexed by the syndrome bitmask.
    entries: Vec<Correction>,
}

impl TableDecoder {
    /// Maximum checks the builder accepts (2^16 exact decodes).
    pub const MAX_CHECKS: usize = 16;

    /// Precomputes the table for a **single-round** graph.
    ///
    /// # Panics
    ///
    /// Panics if the graph has more than one round or more than
    /// [`TableDecoder::MAX_CHECKS`] checks.
    pub fn build(graph: &DecodingGraph) -> TableDecoder {
        assert_eq!(graph.rounds(), 1, "table decoder covers one round");
        let num_checks = graph.num_checks();
        assert!(
            num_checks <= Self::MAX_CHECKS,
            "complete table infeasible for {num_checks} checks"
        );
        let exact = ExactMatchingDecoder::new();
        let entries = (0..1usize << num_checks)
            .map(|mask| {
                let events: Vec<NodeId> = (0..num_checks)
                    .filter(|c| mask >> c & 1 == 1)
                    .map(|c| graph.node(0, c))
                    .collect();
                exact.decode(graph, &events)
            })
            .collect();
        TableDecoder {
            num_checks,
            entries,
        }
    }

    /// Number of table entries (`2^checks`).
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Table storage in bits, assuming one data-flip bitmap per entry over
    /// `data_qubits` (the hardware cost the paper's feasibility argument
    /// cares about).
    pub fn storage_bits(&self, data_qubits: usize) -> usize {
        self.num_entries() * data_qubits
    }
}

impl Decoder for TableDecoder {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        debug_assert_eq!(graph.num_checks(), self.num_checks);
        let mut mask = 0usize;
        for &e in events {
            let (round, check) = graph.round_check(e).expect("event is a check node");
            debug_assert_eq!(round, 0);
            mask |= 1 << check;
        }
        self.entries[mask].clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::correction_explains_events;
    use crate::lattice::{RotatedLattice, StabKind};

    #[test]
    fn table_matches_exact_decoder_on_every_syndrome() {
        let lat = RotatedLattice::new(3);
        for kind in [StabKind::X, StabKind::Z] {
            let g = DecodingGraph::new(&lat, kind, 1);
            let table = TableDecoder::build(&g);
            let exact = ExactMatchingDecoder::new();
            for mask in 0..1usize << g.num_checks() {
                let events: Vec<NodeId> = (0..g.num_checks())
                    .filter(|c| mask >> c & 1 == 1)
                    .map(|c| g.node(0, c))
                    .collect();
                let t = table.decode(&g, &events);
                let e = exact.decode(&g, &events);
                assert!(correction_explains_events(&g, &t, &events));
                assert_eq!(t.weight(), e.weight(), "mask {mask:#b}");
            }
        }
    }

    #[test]
    fn d3_table_is_16_entries_and_tiny() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let table = TableDecoder::build(&g);
        assert_eq!(table.num_entries(), 16);
        // 16 entries × 9 data bits = 144 bits — trivially fits JJ memory.
        assert_eq!(table.storage_bits(lat.num_data()), 144);
    }

    #[test]
    fn d5_table_is_feasible() {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let table = TableDecoder::build(&g);
        assert_eq!(table.num_entries(), 4096);
        // 4096 × 25 bits = 100 Kb: at the edge of JJ feasibility, which is
        // why the paper pairs the LUT with a *global* decoder instead of
        // scaling the table.
        assert_eq!(table.storage_bits(lat.num_data()), 102_400);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn d7_table_is_refused() {
        let lat = RotatedLattice::new(7);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        TableDecoder::build(&g);
    }
}
