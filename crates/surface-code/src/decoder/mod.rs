//! Two-level error decoding, mirroring the paper's §4.2:
//!
//! * [`LutDecoder`] — the *local* decoder inside each MCE's error-decoder
//!   pipeline. A lookup table recognises frequently-occurring isolated
//!   single-qubit errors and corrects them without master-controller
//!   involvement.
//! * [`UnionFindDecoder`] — the *global* decoder in the master controller.
//!   It resolves arbitrary error patterns (chains, multi-error clusters)
//!   over the space-time decoding graph. The paper uses minimum-weight
//!   perfect matching; we use the union-find decoder (Delfosse–Nickerson),
//!   which achieves near-identical thresholds, and validate it against
//!   [`ExactMatchingDecoder`] on small instances.
//! * [`ExactMatchingDecoder`] — brute-force minimum-weight perfect matching
//!   (exponential in the number of detection events), used as ground truth
//!   in tests and small benchmarks.
//!
//! All of these are also available behind the pluggable
//! [`DecoderBackend`] trait (see [`backend`]), which adds per-run
//! selection ([`DecoderChoice`]), scratch ownership and
//! [`CostReport`] cycle/JJ accounting — plus the cycle-accurate
//! [`PipelinedUfDecoder`] hardware model of the Das et al.
//! micro-architecture.

pub mod backend;
pub mod batch;
mod exact;
mod lut;
mod pipelined;
mod table;
mod union_find;

pub use backend::{
    decode_batch_backend, CostReport, DecoderBackend, DecoderChoice, ExactBackend, LutBackend,
    TableBackend, UfBackend,
};
pub use batch::{decode_batch, BatchGraphs, DecodeJob};
pub use exact::ExactMatchingDecoder;
pub use lut::LutDecoder;
pub use pipelined::PipelinedUfDecoder;
pub use table::TableDecoder;
pub use union_find::{UfScratch, UfTrace, UnionFindDecoder};

use crate::graph::{DecodingGraph, EdgeId, Fault, NodeId};
use std::collections::BTreeSet;

/// The output of a decoder: which data qubits to flip, and the full edge
/// set of the inferred fault pattern (including measurement-error edges,
/// which need no physical correction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correction {
    /// Data qubits whose Pauli frame must be flipped.
    pub data_flips: BTreeSet<usize>,
    /// Matched edges of the decoding graph.
    pub edges: Vec<EdgeId>,
}

impl Correction {
    /// Builds a correction from matched edges, XOR-folding data faults
    /// (a qubit flipped an even number of times needs no correction).
    pub fn from_edges(graph: &DecodingGraph, edges: Vec<EdgeId>) -> Correction {
        let mut data_flips = BTreeSet::new();
        for &e in &edges {
            if let Fault::Data(q) = graph.edges()[e].fault {
                if !data_flips.insert(q) {
                    data_flips.remove(&q);
                }
            }
        }
        Correction { data_flips, edges }
    }

    /// Number of data-qubit flips.
    pub fn weight(&self) -> usize {
        self.data_flips.len()
    }
}

/// Detection events for a whole batch of shots, as node-major bit-planes:
/// `planes[node * blocks + b]` holds bit `s` set iff shot `64*b + s` saw
/// an event on check node `node`. This is exactly the layout the frame
/// sampler produces, so handing it to [`Decoder::decode_planes`] skips
/// the per-shot sparse scatter entirely.
///
/// Planes cover the non-boundary check nodes `0..nodes` (the boundary is
/// the last node id and never carries events). Bits at positions `shots`
/// and beyond must be zero — the constructor asserts it, because a stray
/// dead-lane bit would silently decode phantom shots.
#[derive(Debug, Clone, Copy)]
pub struct EventPlanes<'a> {
    planes: &'a [u64],
    nodes: usize,
    blocks: usize,
    shots: usize,
}

impl<'a> EventPlanes<'a> {
    /// Wraps node-major planes of `nodes` check nodes × `blocks` 64-shot
    /// words, of which the first `shots` bits per plane are live.
    ///
    /// # Panics
    ///
    /// Panics if the slice length is not `nodes * blocks`, `shots` does
    /// not land in the final block, or any plane has a bit set past
    /// `shots`.
    #[must_use]
    pub fn new(planes: &'a [u64], nodes: usize, blocks: usize, shots: usize) -> EventPlanes<'a> {
        assert_eq!(planes.len(), nodes * blocks, "plane slice shape mismatch");
        assert!(shots > 0, "need at least one shot");
        assert!(
            shots > (blocks - 1) * 64 && shots <= blocks * 64,
            "shots must fill the final block"
        );
        let tail_bits = shots - (blocks - 1) * 64;
        if tail_bits < 64 {
            let tail_mask = (1u64 << tail_bits) - 1;
            for node in 0..nodes {
                assert_eq!(
                    planes[node * blocks + blocks - 1] & !tail_mask,
                    0,
                    "dead-lane bits must be masked before decoding (node {node})"
                );
            }
        }
        EventPlanes {
            planes,
            nodes,
            blocks,
            shots,
        }
    }

    /// Check nodes covered (`0..nodes`, boundary excluded).
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// 64-shot words per plane.
    #[must_use]
    pub fn blocks(&self) -> usize {
        self.blocks
    }

    /// Live shots.
    #[must_use]
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// The bit-plane of one check node.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    #[must_use]
    pub fn plane(&self, node: NodeId) -> &'a [u64] {
        assert!(node < self.nodes, "node {node} has no event plane");
        &self.planes[node * self.blocks..(node + 1) * self.blocks]
    }

    /// Total detection events over all shots (popcount of every plane).
    #[must_use]
    pub fn total_events(&self) -> usize {
        self.planes.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Scatters the planes into per-shot sparse event lists (ascending
    /// node order per shot). `out` is resized to `shots` and every inner
    /// vector reused.
    pub fn scatter_into(&self, out: &mut Vec<Vec<NodeId>>) {
        out.resize(self.shots, Vec::new());
        for ev in out.iter_mut() {
            ev.clear();
        }
        for node in 0..self.nodes {
            for (b, &word) in self.plane(node).iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    let shot = b * 64 + bits.trailing_zeros() as usize;
                    out[shot].push(node);
                    bits &= bits - 1;
                }
            }
        }
    }
}

/// The corrections of a whole batch of shots, flattened: shot `s` flips
/// data qubits `flips[offsets[s]..offsets[s+1]]` (sorted ascending).
///
/// This is the allocation-free counterpart of `Vec<Correction>` for the
/// plane-batched decode path: one pair of growable vectors instead of a
/// `BTreeSet` + edge vector per shot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorrectionBatch {
    offsets: Vec<usize>,
    flips: Vec<usize>,
}

impl CorrectionBatch {
    /// An empty batch (zero shots).
    #[must_use]
    pub fn new() -> CorrectionBatch {
        CorrectionBatch {
            offsets: vec![0],
            flips: Vec::new(),
        }
    }

    /// Resets to zero shots, keeping allocations.
    pub fn clear(&mut self) {
        self.offsets.clear();
        self.offsets.push(0);
        self.flips.clear();
    }

    /// Appends one data-qubit flip to the shot currently being built.
    pub fn push_flip(&mut self, q: usize) {
        self.flips.push(q);
    }

    /// Seals the shot currently being built and starts the next one.
    pub fn finish_shot(&mut self) {
        self.offsets.push(self.flips.len());
    }

    /// Number of sealed shots.
    #[must_use]
    pub fn shots(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Data-qubit flips of one sealed shot.
    ///
    /// # Panics
    ///
    /// Panics if `shot` is out of range.
    #[must_use]
    pub fn flips_of(&self, shot: usize) -> &[usize] {
        assert!(shot < self.shots(), "shot {shot} not sealed");
        &self.flips[self.offsets[shot]..self.offsets[shot + 1]]
    }

    /// Total data-qubit flips over all sealed shots (the batch
    /// correction weight).
    #[must_use]
    pub fn total_flips(&self) -> usize {
        self.flips.len()
    }
}

impl Default for CorrectionBatch {
    fn default() -> CorrectionBatch {
        CorrectionBatch::new()
    }
}

/// A decoder over the space-time decoding graph.
///
/// `events` are the detection-event nodes (flipped syndrome records).
pub trait Decoder {
    /// Produces a correction whose induced syndrome matches `events`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `events` contains the boundary node or
    /// out-of-range ids.
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction;

    /// Decodes many shots against one graph, returning one correction per
    /// event set in order. Semantically identical to mapping
    /// [`Decoder::decode`]; implementations override it to reuse working
    /// memory across shots (the batch samplers call this once per
    /// shot-block).
    fn decode_many(&self, graph: &DecodingGraph, event_sets: &[Vec<NodeId>]) -> Vec<Correction> {
        event_sets.iter().map(|ev| self.decode(graph, ev)).collect()
    }

    /// Decodes a whole batch handed over as detection-event bit-planes,
    /// writing each shot's data-qubit flips into `out` (shot order, flips
    /// ascending). Bit-identical to scattering the planes and running
    /// [`Decoder::decode_many`] — which is exactly what this default
    /// does; implementations override it to consume the planes directly
    /// and skip the per-shot sparse sets and `Correction` allocations.
    fn decode_planes(
        &self,
        graph: &DecodingGraph,
        planes: &EventPlanes<'_>,
        out: &mut CorrectionBatch,
    ) {
        let mut event_sets: Vec<Vec<NodeId>> = Vec::new();
        planes.scatter_into(&mut event_sets);
        let corrections = self.decode_many(graph, &event_sets);
        out.clear();
        for c in &corrections {
            for &q in &c.data_flips {
                out.push_flip(q);
            }
            out.finish_shot();
        }
    }
}

/// Validates that a correction's edges reproduce exactly the given
/// detection events (every event node touched an odd number of times, all
/// other check nodes an even number). Shared by tests.
pub fn correction_explains_events(
    graph: &DecodingGraph,
    correction: &Correction,
    events: &[NodeId],
) -> bool {
    let mut parity = vec![false; graph.num_nodes()];
    for &e in &correction.edges {
        let edge = &graph.edges()[e];
        parity[edge.a] = !parity[edge.a];
        parity[edge.b] = !parity[edge.b];
    }
    let event_set: BTreeSet<_> = events.iter().copied().collect();
    #[allow(clippy::needless_range_loop)] // n is the node id
    for n in 0..graph.num_nodes() {
        if graph.is_boundary(n) {
            continue; // the boundary absorbs any parity
        }
        if parity[n] != event_set.contains(&n) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{RotatedLattice, StabKind};

    #[test]
    fn correction_from_edges_xor_folds_duplicates() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 2);
        // Find two edges with the same data fault in different rounds.
        let q = 4usize; // bulk data qubit
        let same_fault: Vec<EdgeId> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.fault == Fault::Data(q))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(same_fault.len(), 2);
        let c = Correction::from_edges(&g, same_fault);
        assert!(c.data_flips.is_empty(), "double flip should cancel");
    }

    #[test]
    fn empty_correction_explains_no_events() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let c = Correction::default();
        assert!(correction_explains_events(&g, &c, &[]));
        assert!(!correction_explains_events(&g, &c, &[g.node(0, 0)]));
    }
}
