//! Two-level error decoding, mirroring the paper's §4.2:
//!
//! * [`LutDecoder`] — the *local* decoder inside each MCE's error-decoder
//!   pipeline. A lookup table recognises frequently-occurring isolated
//!   single-qubit errors and corrects them without master-controller
//!   involvement.
//! * [`UnionFindDecoder`] — the *global* decoder in the master controller.
//!   It resolves arbitrary error patterns (chains, multi-error clusters)
//!   over the space-time decoding graph. The paper uses minimum-weight
//!   perfect matching; we use the union-find decoder (Delfosse–Nickerson),
//!   which achieves near-identical thresholds, and validate it against
//!   [`ExactMatchingDecoder`] on small instances.
//! * [`ExactMatchingDecoder`] — brute-force minimum-weight perfect matching
//!   (exponential in the number of detection events), used as ground truth
//!   in tests and small benchmarks.
//!
//! All of these are also available behind the pluggable
//! [`DecoderBackend`] trait (see [`backend`]), which adds per-run
//! selection ([`DecoderChoice`]), scratch ownership and
//! [`CostReport`] cycle/JJ accounting — plus the cycle-accurate
//! [`PipelinedUfDecoder`] hardware model of the Das et al.
//! micro-architecture.

pub mod backend;
pub mod batch;
mod exact;
mod lut;
mod pipelined;
mod table;
mod union_find;

pub use backend::{
    decode_batch_backend, CostReport, DecoderBackend, DecoderChoice, ExactBackend, LutBackend,
    TableBackend, UfBackend,
};
pub use batch::{decode_batch, BatchGraphs, DecodeJob};
pub use exact::ExactMatchingDecoder;
pub use lut::LutDecoder;
pub use pipelined::PipelinedUfDecoder;
pub use table::TableDecoder;
pub use union_find::{UfScratch, UfTrace, UnionFindDecoder};

use crate::graph::{DecodingGraph, EdgeId, Fault, NodeId};
use std::collections::BTreeSet;

/// The output of a decoder: which data qubits to flip, and the full edge
/// set of the inferred fault pattern (including measurement-error edges,
/// which need no physical correction).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Correction {
    /// Data qubits whose Pauli frame must be flipped.
    pub data_flips: BTreeSet<usize>,
    /// Matched edges of the decoding graph.
    pub edges: Vec<EdgeId>,
}

impl Correction {
    /// Builds a correction from matched edges, XOR-folding data faults
    /// (a qubit flipped an even number of times needs no correction).
    pub fn from_edges(graph: &DecodingGraph, edges: Vec<EdgeId>) -> Correction {
        let mut data_flips = BTreeSet::new();
        for &e in &edges {
            if let Fault::Data(q) = graph.edges()[e].fault {
                if !data_flips.insert(q) {
                    data_flips.remove(&q);
                }
            }
        }
        Correction { data_flips, edges }
    }

    /// Number of data-qubit flips.
    pub fn weight(&self) -> usize {
        self.data_flips.len()
    }
}

/// A decoder over the space-time decoding graph.
///
/// `events` are the detection-event nodes (flipped syndrome records).
pub trait Decoder {
    /// Produces a correction whose induced syndrome matches `events`.
    ///
    /// # Panics
    ///
    /// Implementations may panic if `events` contains the boundary node or
    /// out-of-range ids.
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction;

    /// Decodes many shots against one graph, returning one correction per
    /// event set in order. Semantically identical to mapping
    /// [`Decoder::decode`]; implementations override it to reuse working
    /// memory across shots (the batch samplers call this once per
    /// shot-block).
    fn decode_many(&self, graph: &DecodingGraph, event_sets: &[Vec<NodeId>]) -> Vec<Correction> {
        event_sets.iter().map(|ev| self.decode(graph, ev)).collect()
    }
}

/// Validates that a correction's edges reproduce exactly the given
/// detection events (every event node touched an odd number of times, all
/// other check nodes an even number). Shared by tests.
pub fn correction_explains_events(
    graph: &DecodingGraph,
    correction: &Correction,
    events: &[NodeId],
) -> bool {
    let mut parity = vec![false; graph.num_nodes()];
    for &e in &correction.edges {
        let edge = &graph.edges()[e];
        parity[edge.a] = !parity[edge.a];
        parity[edge.b] = !parity[edge.b];
    }
    let event_set: BTreeSet<_> = events.iter().copied().collect();
    #[allow(clippy::needless_range_loop)] // n is the node id
    for n in 0..graph.num_nodes() {
        if graph.is_boundary(n) {
            continue; // the boundary absorbs any parity
        }
        if parity[n] != event_set.contains(&n) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::{RotatedLattice, StabKind};

    #[test]
    fn correction_from_edges_xor_folds_duplicates() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 2);
        // Find two edges with the same data fault in different rounds.
        let q = 4usize; // bulk data qubit
        let same_fault: Vec<EdgeId> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(_, e)| e.fault == Fault::Data(q))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(same_fault.len(), 2);
        let c = Correction::from_edges(&g, same_fault);
        assert!(c.data_flips.is_empty(), "double flip should cancel");
    }

    #[test]
    fn empty_correction_explains_no_events() {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        let c = Correction::default();
        assert!(correction_explains_events(&g, &c, &[]));
        assert!(!correction_explains_events(&g, &c, &[g.node(0, 0)]));
    }
}
