//! Syndrome-design descriptors.
//!
//! The paper evaluates four error-syndrome designs (§7, Table 2): a
//! Shor-style syndrome (14 instructions per qubit per QECC cycle), a
//! Steane-style syndrome (9 instructions), and the optimized SC-17 and
//! SC-13 codes of Tomita & Svore with 17- and 13-qubit unit cells. The
//! descriptor carries everything the microarchitecture model needs: the
//! syndrome-generation circuit depth, the spatially repeating unit-cell
//! size (Fowler's 25-qubit cell for the classic surface code), and the
//! total µop program length of one unit-cell QECC cycle (Table 2).

use std::fmt;

/// Parameters of one quantum-error-correction syndrome design.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SyndromeDesign {
    /// Human-readable name.
    pub name: &'static str,
    /// Instructions per qubit in one QECC cycle (syndrome-generation
    /// circuit depth, including preparation and measurement).
    pub cycle_depth: usize,
    /// Number of qubits in the spatially repeating unit cell.
    pub unit_cell_qubits: usize,
    /// Total µops in the unit-cell microcode program (Table 2).
    pub microcode_uops: usize,
}

impl SyndromeDesign {
    /// Steane-style syndrome: 9 instructions per qubit per cycle on the
    /// classic 25-qubit (5×5) Fowler unit cell; 148-µop program.
    pub const STEANE: SyndromeDesign = SyndromeDesign {
        name: "Steane",
        cycle_depth: 9,
        unit_cell_qubits: 25,
        microcode_uops: 148,
    };

    /// Shor-style syndrome: 14 instructions per qubit per cycle; 300-µop
    /// program.
    pub const SHOR: SyndromeDesign = SyndromeDesign {
        name: "Shor",
        cycle_depth: 14,
        unit_cell_qubits: 25,
        microcode_uops: 300,
    };

    /// Tomita–Svore SC-17: 17-qubit unit cell, depth-8 cycle, 136-µop
    /// program.
    pub const SC17: SyndromeDesign = SyndromeDesign {
        name: "SC-17",
        cycle_depth: 8,
        unit_cell_qubits: 17,
        microcode_uops: 136,
    };

    /// Tomita–Svore SC-13: 13-qubit unit cell, depth-7 cycle, 147-µop
    /// program (the unit cell needs extra padding slots; Table 2).
    pub const SC13: SyndromeDesign = SyndromeDesign {
        name: "SC-13",
        cycle_depth: 7,
        unit_cell_qubits: 13,
        microcode_uops: 147,
    };

    /// The four designs evaluated in the paper, in Table 2 order.
    pub const ALL: [SyndromeDesign; 4] = [
        SyndromeDesign::STEANE,
        SyndromeDesign::SHOR,
        SyndromeDesign::SC17,
        SyndromeDesign::SC13,
    ];

    /// µops the microcode must deliver per qubit per second, given the
    /// single-instruction latency in seconds (§4.5: every qubit receives an
    /// instruction every slot).
    pub fn uop_rate_per_qubit(&self, instruction_latency_s: f64) -> f64 {
        1.0 / instruction_latency_s
    }

    /// Duration of one full QECC cycle given per-instruction latency.
    pub fn cycle_time_s(&self, instruction_latency_s: f64) -> f64 {
        self.cycle_depth as f64 * instruction_latency_s
    }
}

impl fmt::Display for SyndromeDesign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (depth {}, {}-qubit cell, {} µops)",
            self.name, self.cycle_depth, self.unit_cell_qubits, self.microcode_uops
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_program_lengths() {
        assert_eq!(SyndromeDesign::STEANE.microcode_uops, 148);
        assert_eq!(SyndromeDesign::SHOR.microcode_uops, 300);
        assert_eq!(SyndromeDesign::SC17.microcode_uops, 136);
        assert_eq!(SyndromeDesign::SC13.microcode_uops, 147);
    }

    #[test]
    fn paper_cycle_depths() {
        // §7: Shor needs 14 instructions per qubit, Steane 9.
        assert_eq!(SyndromeDesign::SHOR.cycle_depth, 14);
        assert_eq!(SyndromeDesign::STEANE.cycle_depth, 9);
    }

    #[test]
    fn cycle_time_scales_with_depth() {
        let t = 10e-9;
        assert!(SyndromeDesign::SHOR.cycle_time_s(t) > SyndromeDesign::STEANE.cycle_time_s(t));
        assert_eq!(SyndromeDesign::SC17.cycle_time_s(t), 8.0 * t);
    }

    #[test]
    fn all_designs_have_distinct_names() {
        let names: std::collections::HashSet<_> =
            SyndromeDesign::ALL.iter().map(|d| d.name).collect();
        assert_eq!(names.len(), 4);
    }
}
