//! Rotated surface-code lattice geometry.
//!
//! A distance-`d` rotated surface code uses `d²` data qubits on a square
//! grid and `d² − 1` ancilla qubits, one per stabilizer plaquette. X-type
//! boundaries run along the top and bottom, Z-type boundaries along the left
//! and right. Logical X is a vertical column of physical X operators;
//! logical Z is a horizontal row of physical Z operators.
//!
//! Qubit numbering for simulation: data qubits are `0 .. d²` (row-major),
//! ancillas follow at `d² ..`.

use quest_stabilizer::{Pauli, PauliString};
use std::fmt;

/// Stabilizer type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabKind {
    /// X-type stabilizer (detects Z errors).
    X,
    /// Z-type stabilizer (detects X errors).
    Z,
}

impl StabKind {
    /// The opposite stabilizer type.
    pub fn other(self) -> StabKind {
        match self {
            StabKind::X => StabKind::Z,
            StabKind::Z => StabKind::X,
        }
    }

    /// The Pauli error type detected by this stabilizer type.
    pub fn detects(self) -> Pauli {
        match self {
            StabKind::X => Pauli::Z,
            StabKind::Z => Pauli::X,
        }
    }
}

impl fmt::Display for StabKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StabKind::X => write!(f, "X"),
            StabKind::Z => write!(f, "Z"),
        }
    }
}

/// One stabilizer plaquette and its ancilla qubit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plaquette {
    /// Plaquette row in `0..=d`.
    pub row: usize,
    /// Plaquette column in `0..=d`.
    pub col: usize,
    /// Stabilizer type.
    pub kind: StabKind,
    /// Data-qubit indices in geometric order `[NW, NE, SW, SE]`; boundary
    /// plaquettes omit the missing corners.
    pub data: Vec<usize>,
    /// Simulation index of the ancilla qubit.
    pub ancilla: usize,
}

/// Data qubits of a plaquette by geometric corner, `None` when outside the
/// lattice. Order: NW, NE, SW, SE.
pub type Corners = [Option<usize>; 4];

/// Distance-`d` rotated surface-code lattice.
///
/// # Example
///
/// ```
/// use quest_surface::RotatedLattice;
///
/// let lat = RotatedLattice::new(3);
/// assert_eq!(lat.num_data(), 9);
/// assert_eq!(lat.num_ancillas(), 8);
/// assert_eq!(lat.num_qubits(), 17);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotatedLattice {
    d: usize,
    plaquettes: Vec<Plaquette>,
}

impl RotatedLattice {
    /// Builds the lattice for odd code distance `d ≥ 3`.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even or less than 3.
    pub fn new(d: usize) -> RotatedLattice {
        assert!(d >= 3, "code distance must be at least 3");
        assert!(d % 2 == 1, "code distance must be odd");
        let mut plaquettes = Vec::new();
        let mut ancilla = d * d;
        for row in 0..=d {
            for col in 0..=d {
                // X plaquettes sit on odd-parity corners so that the kept
                // boundary stabilizers land on the top/bottom edges.
                let kind = if (row + col) % 2 == 1 {
                    StabKind::X
                } else {
                    StabKind::Z
                };
                let corners = Self::corner_data(d, row, col);
                let data: Vec<usize> = corners.iter().flatten().copied().collect();
                let keep = match data.len() {
                    4 => true,
                    2 => match kind {
                        // Weight-2 X stabilizers only on the top/bottom edge.
                        StabKind::X => row == 0 || row == d,
                        // Weight-2 Z stabilizers only on the left/right edge.
                        StabKind::Z => col == 0 || col == d,
                    },
                    _ => false,
                };
                if keep {
                    plaquettes.push(Plaquette {
                        row,
                        col,
                        kind,
                        data,
                        ancilla,
                    });
                    ancilla += 1;
                }
            }
        }
        RotatedLattice { d, plaquettes }
    }

    /// Data-qubit indices at the four corners of plaquette `(row, col)`,
    /// `None` where the corner falls outside the `d × d` data grid.
    fn corner_data(d: usize, row: usize, col: usize) -> Corners {
        let at = |r: isize, c: isize| -> Option<usize> {
            if r >= 0 && c >= 0 && (r as usize) < d && (c as usize) < d {
                Some(r as usize * d + c as usize)
            } else {
                None
            }
        };
        let (r, c) = (row as isize, col as isize);
        [
            at(r - 1, c - 1), // NW
            at(r - 1, c),     // NE
            at(r, c - 1),     // SW
            at(r, c),         // SE
        ]
    }

    /// Code distance.
    pub fn distance(&self) -> usize {
        self.d
    }

    /// Number of data qubits (`d²`).
    pub fn num_data(&self) -> usize {
        self.d * self.d
    }

    /// Number of ancilla qubits (`d² − 1`).
    pub fn num_ancillas(&self) -> usize {
        self.plaquettes.len()
    }

    /// Total simulated qubits (data + ancilla).
    pub fn num_qubits(&self) -> usize {
        self.num_data() + self.num_ancillas()
    }

    /// All plaquettes in ancilla-index order.
    pub fn plaquettes(&self) -> &[Plaquette] {
        &self.plaquettes
    }

    /// Plaquettes of one stabilizer type, in ancilla-index order.
    pub fn plaquettes_of(&self, kind: StabKind) -> impl Iterator<Item = &Plaquette> {
        self.plaquettes.iter().filter(move |p| p.kind == kind)
    }

    /// Corner layout (with gaps) for a plaquette, used by the CNOT
    /// scheduler.
    pub fn corners(&self, p: &Plaquette) -> Corners {
        Self::corner_data(self.d, p.row, p.col)
    }

    /// Simulation index of data qubit at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the coordinates are outside the `d × d` grid.
    pub fn data_index(&self, row: usize, col: usize) -> usize {
        assert!(row < self.d && col < self.d, "data coordinate out of range");
        row * self.d + col
    }

    /// The plaquettes (of the given type) containing a data qubit. Every
    /// data qubit belongs to one or two plaquettes of each type.
    pub fn stabilizers_on(&self, data: usize, kind: StabKind) -> Vec<&Plaquette> {
        self.plaquettes
            .iter()
            .filter(|p| p.kind == kind && p.data.contains(&data))
            .collect()
    }

    /// Logical X operator: physical X on the left-most column of data
    /// qubits (connecting the two X-type boundaries).
    pub fn logical_x(&self) -> PauliString {
        let mut p = PauliString::identity(self.num_qubits());
        for row in 0..self.d {
            p.set(self.data_index(row, 0), Pauli::X);
        }
        p
    }

    /// Logical Z operator: physical Z on the top row of data qubits
    /// (connecting the two Z-type boundaries).
    pub fn logical_z(&self) -> PauliString {
        let mut p = PauliString::identity(self.num_qubits());
        for col in 0..self.d {
            p.set(self.data_index(0, col), Pauli::Z);
        }
        p
    }

    /// The stabilizer of a plaquette as a signed Pauli string over all
    /// simulated qubits.
    pub fn stabilizer_operator(&self, p: &Plaquette) -> PauliString {
        let pauli = match p.kind {
            StabKind::X => Pauli::X,
            StabKind::Z => Pauli::Z,
        };
        let mut s = PauliString::identity(self.num_qubits());
        for &q in &p.data {
            s.set(q, pauli);
        }
        s
    }

    /// Number of physical qubits per logical qubit in the paper's headline
    /// accounting (Fowler et al., appendix M): `12.5 · d²`.
    pub fn fowler_physical_qubits(d: usize) -> f64 {
        12.5 * (d * d) as f64
    }

    /// Number of physical qubits per logical qubit in the QuRE-style
    /// `7d × 3d` patch used by the paper's evaluation (§6.2).
    pub fn qure_patch_qubits(d: usize) -> usize {
        7 * d * 3 * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3_counts() {
        let lat = RotatedLattice::new(3);
        assert_eq!(lat.num_data(), 9);
        assert_eq!(lat.num_ancillas(), 8);
        let x = lat.plaquettes_of(StabKind::X).count();
        let z = lat.plaquettes_of(StabKind::Z).count();
        assert_eq!(x, 4);
        assert_eq!(z, 4);
    }

    #[test]
    fn d5_counts() {
        let lat = RotatedLattice::new(5);
        assert_eq!(lat.num_data(), 25);
        assert_eq!(lat.num_ancillas(), 24);
        assert_eq!(lat.plaquettes_of(StabKind::X).count(), 12);
        assert_eq!(lat.plaquettes_of(StabKind::Z).count(), 12);
    }

    #[test]
    fn plaquette_weights_are_2_or_4() {
        for d in [3, 5, 7] {
            let lat = RotatedLattice::new(d);
            for p in lat.plaquettes() {
                assert!(p.data.len() == 2 || p.data.len() == 4);
            }
        }
    }

    #[test]
    fn weight_two_plaquettes_sit_on_correct_boundaries() {
        let lat = RotatedLattice::new(5);
        for p in lat.plaquettes() {
            if p.data.len() == 2 {
                match p.kind {
                    StabKind::X => assert!(p.row == 0 || p.row == 5),
                    StabKind::Z => assert!(p.col == 0 || p.col == 5),
                }
            }
        }
    }

    #[test]
    fn stabilizers_commute_pairwise() {
        let lat = RotatedLattice::new(5);
        let ops: Vec<_> = lat
            .plaquettes()
            .iter()
            .map(|p| lat.stabilizer_operator(p))
            .collect();
        for (i, a) in ops.iter().enumerate() {
            for b in &ops[i + 1..] {
                assert!(a.commutes_with(b));
            }
        }
    }

    #[test]
    fn logicals_commute_with_stabilizers_and_anticommute_with_each_other() {
        for d in [3, 5] {
            let lat = RotatedLattice::new(d);
            let lx = lat.logical_x();
            let lz = lat.logical_z();
            for p in lat.plaquettes() {
                let s = lat.stabilizer_operator(p);
                assert!(lx.commutes_with(&s), "d={d} X_L vs {:?}", (p.row, p.col));
                assert!(lz.commutes_with(&s), "d={d} Z_L vs {:?}", (p.row, p.col));
            }
            assert!(!lx.commutes_with(&lz));
            assert_eq!(lx.weight(), d);
            assert_eq!(lz.weight(), d);
        }
    }

    #[test]
    fn every_data_qubit_in_one_or_two_stabilizers_of_each_kind() {
        for d in [3, 5, 7] {
            let lat = RotatedLattice::new(d);
            for q in 0..lat.num_data() {
                for kind in [StabKind::X, StabKind::Z] {
                    let n = lat.stabilizers_on(q, kind).len();
                    assert!(
                        n == 1 || n == 2,
                        "d={d} data {q} is in {n} {kind} stabilizers"
                    );
                }
            }
        }
    }

    #[test]
    fn ancilla_indices_are_contiguous_after_data() {
        let lat = RotatedLattice::new(3);
        let mut indices: Vec<_> = lat.plaquettes().iter().map(|p| p.ancilla).collect();
        indices.sort_unstable();
        let expected: Vec<_> = (9..17).collect();
        assert_eq!(indices, expected);
    }

    #[test]
    fn physical_qubit_accounting() {
        assert_eq!(RotatedLattice::fowler_physical_qubits(5), 312.5);
        assert_eq!(RotatedLattice::qure_patch_qubits(5), 525);
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_panics() {
        RotatedLattice::new(4);
    }

    #[test]
    fn stab_kind_helpers() {
        assert_eq!(StabKind::X.other(), StabKind::Z);
        assert_eq!(StabKind::Z.detects(), Pauli::X);
        assert_eq!(StabKind::X.detects(), Pauli::Z);
    }
}
