//! Property-based tests of the decoder stack.
//!
//! The defining property of a distance-`d` code is that every error of
//! weight ≤ ⌊(d−1)/2⌋ is corrected. We verify it end-to-end through the
//! memory experiment (stabilizer simulation → syndrome extraction →
//! space-time decoding → logical readout), and check structural properties
//! of the decoders on random syndromes.

use proptest::prelude::*;
use quest_stabilizer::{Pauli, PauliString};
use quest_surface::decoder::{correction_explains_events, Decoder};
use quest_surface::{
    DecodingGraph, ExactMatchingDecoder, LutDecoder, MemoryBasis, MemoryExperiment, MemoryNoise,
    NodeId, RotatedLattice, StabKind, UnionFindDecoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// d = 3: every weight-1 error anywhere, any Pauli, any round spacing,
    /// is corrected by both global decoders in both bases.
    #[test]
    fn weight_one_errors_always_corrected_d3(
        q in 0usize..9,
        pauli_idx in 0usize..3,
        rounds in 1usize..4,
        basis_z in any::<bool>(),
        seed in 0u64..500,
    ) {
        let basis = if basis_z { MemoryBasis::Z } else { MemoryBasis::X };
        let exp = MemoryExperiment::new(3, rounds, basis);
        let n = exp.lattice().num_qubits();
        let inject = PauliString::from_sparse(n, &[(q, Pauli::ERRORS[pauli_idx])]);
        let mut rng = StdRng::seed_from_u64(seed);
        let uf = exp.run_with_injection(&MemoryNoise::noiseless(), Some(&inject), &UnionFindDecoder::new(), &mut rng);
        prop_assert!(!uf.logical_error, "union-find failed");
        let ex = exp.run_with_injection(&MemoryNoise::noiseless(), Some(&inject), &ExactMatchingDecoder::new(), &mut rng);
        prop_assert!(!ex.logical_error, "exact matcher failed");
    }

    /// d = 5 corrects every weight-2 error (two independent single-qubit
    /// Paulis) with the exact matcher.
    #[test]
    fn weight_two_errors_always_corrected_d5(
        q1 in 0usize..25,
        q2 in 0usize..25,
        p1 in 0usize..3,
        p2 in 0usize..3,
        seed in 0u64..100,
    ) {
        let exp = MemoryExperiment::new(5, 1, MemoryBasis::Z);
        let n = exp.lattice().num_qubits();
        let inject = PauliString::from_sparse(
            n,
            &[(q1, Pauli::ERRORS[p1]), (q2, Pauli::ERRORS[p2])],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let out = exp.run_with_injection(
            &MemoryNoise::noiseless(),
            Some(&inject),
            &ExactMatchingDecoder::new(),
            &mut rng,
        );
        prop_assert!(!out.logical_error, "exact matcher failed on {inject}");
    }

    /// Union-find always yields a syndrome-consistent correction on random
    /// event sets, across distances and round counts.
    #[test]
    fn union_find_is_always_syndrome_consistent(
        d_idx in 0usize..2,
        rounds in 1usize..5,
        event_seed in any::<u64>(),
        k in 0usize..10,
    ) {
        let d = [3, 5][d_idx];
        let lat = RotatedLattice::new(d);
        let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = nodes.choose_multiple(&mut rng, k.min(nodes.len())).copied().collect();
        let c = UnionFindDecoder::new().decode(&g, &events);
        prop_assert!(correction_explains_events(&g, &c, &events));
    }

    /// Whenever the local LUT decoder answers, its answer is
    /// syndrome-consistent (it may escalate by returning `None`, never
    /// answer wrongly).
    #[test]
    fn lut_decoder_never_answers_inconsistently(
        rounds in 1usize..4,
        event_seed in any::<u64>(),
        k in 0usize..6,
    ) {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
        let lut = LutDecoder::new(&g);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = nodes.choose_multiple(&mut rng, k.min(nodes.len())).copied().collect();
        if let Some(c) = lut.try_correction(&g, &events) {
            prop_assert!(correction_explains_events(&g, &c, &events));
        }
    }

    /// The exact matcher's cost is a lower bound on union-find's edge count
    /// (exact is minimum-weight by construction).
    #[test]
    fn exact_cost_lower_bounds_union_find(
        event_seed in any::<u64>(),
        k in 1usize..7,
    ) {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = nodes.choose_multiple(&mut rng, k).copied().collect();
        let exact = ExactMatchingDecoder::new();
        let cost = exact.matching_cost(&g, &events);
        let uf = UnionFindDecoder::new().decode(&g, &events);
        prop_assert!(uf.edges.len() >= cost || uf.edges.is_empty() && cost == 0,
            "UF produced fewer edges ({}) than the optimal matching cost ({cost})", uf.edges.len());
    }
}
