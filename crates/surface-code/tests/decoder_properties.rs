//! Property-based tests of the decoder stack.
//!
//! The defining property of a distance-`d` code is that every error of
//! weight ≤ ⌊(d−1)/2⌋ is corrected. We verify it end-to-end through the
//! memory experiment (stabilizer simulation → syndrome extraction →
//! space-time decoding → logical readout), and check structural properties
//! of the decoders on random syndromes.

use proptest::prelude::*;
use quest_stabilizer::{Pauli, PauliString};
use quest_surface::decoder::{correction_explains_events, Decoder};
use quest_surface::{
    DecodingGraph, ExactMatchingDecoder, Fault, LutDecoder, MemoryBasis, MemoryExperiment,
    MemoryNoise, NodeId, RotatedLattice, StabKind, UnionFindDecoder,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

/// Homology class of an X-type flip set: whether it anticommutes with
/// logical Z, i.e. crosses the lattice. Two corrections for the same
/// syndrome are equivalent (differ by stabilizers) iff their classes
/// match; a class flip is exactly a logical error.
fn crosses_logical(lat: &RotatedLattice, flips: &BTreeSet<usize>) -> bool {
    let logical = lat.logical_z();
    flips
        .iter()
        .filter(|&&q| logical.get(q) != Pauli::I)
        .count()
        % 2
        == 1
}

/// Detection events produced by a set of single-round data-qubit errors.
fn events_of_data_error(g: &DecodingGraph, error: &BTreeSet<usize>) -> Vec<NodeId> {
    let mut parity = vec![false; g.num_nodes()];
    for &q in error {
        let edge = g
            .edges()
            .iter()
            .find(|e| e.fault == Fault::Data(q))
            .expect("every data qubit has a decoding edge");
        parity[edge.a] = !parity[edge.a];
        parity[edge.b] = !parity[edge.b];
    }
    (0..g.num_nodes())
        .filter(|&n| !g.is_boundary(n) && parity[n])
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// d = 3: every weight-1 error anywhere, any Pauli, any round spacing,
    /// is corrected by both global decoders in both bases.
    #[test]
    fn weight_one_errors_always_corrected_d3(
        q in 0usize..9,
        pauli_idx in 0usize..3,
        rounds in 1usize..4,
        basis_z in any::<bool>(),
        seed in 0u64..500,
    ) {
        let basis = if basis_z { MemoryBasis::Z } else { MemoryBasis::X };
        let exp = MemoryExperiment::new(3, rounds, basis);
        let n = exp.lattice().num_qubits();
        let inject = PauliString::from_sparse(n, &[(q, Pauli::ERRORS[pauli_idx])]);
        let mut rng = StdRng::seed_from_u64(seed);
        let uf = exp.run_with_injection(&MemoryNoise::noiseless(), Some(&inject), &UnionFindDecoder::new(), &mut rng);
        prop_assert!(!uf.logical_error, "union-find failed");
        let ex = exp.run_with_injection(&MemoryNoise::noiseless(), Some(&inject), &ExactMatchingDecoder::new(), &mut rng);
        prop_assert!(!ex.logical_error, "exact matcher failed");
    }

    /// d = 5 corrects every weight-2 error (two independent single-qubit
    /// Paulis) with the exact matcher.
    #[test]
    fn weight_two_errors_always_corrected_d5(
        q1 in 0usize..25,
        q2 in 0usize..25,
        p1 in 0usize..3,
        p2 in 0usize..3,
        seed in 0u64..100,
    ) {
        let exp = MemoryExperiment::new(5, 1, MemoryBasis::Z);
        let n = exp.lattice().num_qubits();
        let inject = PauliString::from_sparse(
            n,
            &[(q1, Pauli::ERRORS[p1]), (q2, Pauli::ERRORS[p2])],
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let out = exp.run_with_injection(
            &MemoryNoise::noiseless(),
            Some(&inject),
            &ExactMatchingDecoder::new(),
            &mut rng,
        );
        prop_assert!(!out.logical_error, "exact matcher failed on {inject}");
    }

    /// Union-find always yields a syndrome-consistent correction on random
    /// event sets, across distances and round counts.
    #[test]
    fn union_find_is_always_syndrome_consistent(
        d_idx in 0usize..2,
        rounds in 1usize..5,
        event_seed in any::<u64>(),
        k in 0usize..10,
    ) {
        let d = [3, 5][d_idx];
        let lat = RotatedLattice::new(d);
        let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = nodes.choose_multiple(&mut rng, k.min(nodes.len())).copied().collect();
        let c = UnionFindDecoder::new().decode(&g, &events);
        prop_assert!(correction_explains_events(&g, &c, &events));
    }

    /// Whenever the local LUT decoder answers, its answer is
    /// syndrome-consistent (it may escalate by returning `None`, never
    /// answer wrongly).
    #[test]
    fn lut_decoder_never_answers_inconsistently(
        rounds in 1usize..4,
        event_seed in any::<u64>(),
        k in 0usize..6,
    ) {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
        let lut = LutDecoder::new(&g);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = nodes.choose_multiple(&mut rng, k.min(nodes.len())).copied().collect();
        if let Some(c) = lut.try_correction(&g, &events) {
            prop_assert!(correction_explains_events(&g, &c, &events));
        }
    }

    /// On every correctable error (weight ≤ ⌊(d−1)/2⌋) the union-find
    /// decoder lands in the same homology class as the exact matcher —
    /// i.e. it is never *worse*: whenever minimum-weight matching
    /// recovers the state, so does union-find.
    #[test]
    fn union_find_class_never_worse_than_exact_on_correctable_errors(
        d_idx in 0usize..2,
        qubit_seed in any::<u64>(),
    ) {
        let d = [3usize, 5][d_idx];
        let lat = RotatedLattice::new(d);
        let g = DecodingGraph::new(&lat, StabKind::Z, 1);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(qubit_seed);
        let qubits: Vec<usize> = (0..lat.num_data()).collect();
        let error: BTreeSet<usize> = qubits
            .choose_multiple(&mut rng, (d - 1) / 2)
            .copied()
            .collect();
        let events = events_of_data_error(&g, &error);
        let exact = ExactMatchingDecoder::new().decode(&g, &events);
        let uf = UnionFindDecoder::new().decode(&g, &events);
        // The exact matcher corrects every error within the code radius…
        prop_assert_eq!(
            crosses_logical(&lat, &exact.data_flips),
            crosses_logical(&lat, &error),
            "exact matcher missed a correctable error {error:?}"
        );
        // …and union-find must land in the same class.
        prop_assert_eq!(
            crosses_logical(&lat, &uf.data_flips),
            crosses_logical(&lat, &exact.data_flips),
            "union-find chose a worse class than exact on {error:?}"
        );
    }

    /// At d = 3 the local lookup table agrees with the exact matcher on
    /// every single-fault pattern: same matching cost, same class.
    #[test]
    fn lut_agrees_with_exact_on_every_single_fault_at_d3(
        edge_raw in any::<u64>(),
        rounds in 1usize..4,
    ) {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, rounds);
        let lut = LutDecoder::new(&g);
        let edge = &g.edges()[edge_raw as usize % g.edges().len()];
        let events: Vec<NodeId> = [edge.a, edge.b]
            .into_iter()
            .filter(|&n| !g.is_boundary(n))
            .collect();
        let c = lut.try_correction(&g, &events);
        prop_assert!(c.is_some(), "LUT escalated a single-fault pattern {events:?}");
        let c = c.unwrap();
        let exact = ExactMatchingDecoder::new();
        prop_assert_eq!(c.edges.len(), exact.matching_cost(&g, &events));
        let ec = exact.decode(&g, &events);
        prop_assert_eq!(
            crosses_logical(&lat, &c.data_flips),
            crosses_logical(&lat, &ec.data_flips)
        );
    }

    /// When the LUT answers on an arbitrary d = 3 event set, its answer is
    /// syndrome-consistent and never beats the exact minimum matching cost
    /// (class agreement is only guaranteed on its designed single-fault
    /// domain — a greedy tiling of an ambiguous multi-event pattern may
    /// legitimately pick boundary singles where the matcher chains).
    #[test]
    fn lut_never_beats_exact_cost_when_it_answers_at_d3(
        event_seed in any::<u64>(),
        k in 0usize..5,
    ) {
        let lat = RotatedLattice::new(3);
        let g = DecodingGraph::new(&lat, StabKind::Z, 2);
        let lut = LutDecoder::new(&g);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> =
            nodes.choose_multiple(&mut rng, k.min(nodes.len())).copied().collect();
        if let Some(c) = lut.try_correction(&g, &events) {
            prop_assert!(correction_explains_events(&g, &c, &events));
            let cost = ExactMatchingDecoder::new().matching_cost(&g, &events);
            prop_assert!(c.edges.len() >= cost);
        }
    }

    /// The exact matcher's cost is a lower bound on union-find's edge count
    /// (exact is minimum-weight by construction).
    #[test]
    fn exact_cost_lower_bounds_union_find(
        event_seed in any::<u64>(),
        k in 1usize..7,
    ) {
        let lat = RotatedLattice::new(5);
        let g = DecodingGraph::new(&lat, StabKind::Z, 3);
        use rand::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(event_seed);
        let nodes: Vec<NodeId> = (0..g.boundary()).collect();
        let events: Vec<NodeId> = nodes.choose_multiple(&mut rng, k).copied().collect();
        let exact = ExactMatchingDecoder::new();
        let cost = exact.matching_cost(&g, &events);
        let uf = UnionFindDecoder::new().decode(&g, &events);
        prop_assert!(uf.edges.len() >= cost || uf.edges.is_empty() && cost == 0,
            "UF produced fewer edges ({}) than the optimal matching cost ({cost})", uf.edges.len());
    }
}
