//! Circuit-fault injection campaign.
//!
//! A distance-d surface code with a well-chosen CNOT schedule tolerates
//! ⌊(d−1)/2⌋ *circuit* faults — including "hook" faults, where a single
//! faulty CNOT deposits a two-qubit error that the schedule must keep
//! from aligning with a logical operator. This campaign injects every
//! X-component Pauli fault after every gate of one syndrome round at
//! d = 5 and asserts the decoded logical Z observable always survives.
//! If the interleaving order in `schedule.rs` were wrong, specific CNOT
//! faults here would produce logical errors.

use quest_stabilizer::{Pauli, SeedableRng, StdRng, Tableau};
use quest_surface::decoder::Decoder;
use quest_surface::{
    DecodingGraph, ExactMatchingDecoder, RotatedLattice, StabKind, SyndromeCircuit,
};

/// Enumerates the X-component faults to inject after one gate: for
/// single-qubit gates the X and Y faults on its qubit; for two-qubit
/// gates all pairs with at least one X component.
fn faults_for(gate: quest_stabilizer::Gate) -> Vec<Vec<(usize, Pauli)>> {
    let (a, b) = gate.qubits();
    match b {
        None => vec![vec![(a, Pauli::X)], vec![(a, Pauli::Y)]],
        Some(b) => {
            let mut out = Vec::new();
            for pa in [Pauli::I, Pauli::X, Pauli::Y] {
                for pb in [Pauli::I, Pauli::X, Pauli::Y] {
                    if pa == Pauli::I && pb == Pauli::I {
                        continue;
                    }
                    let mut f = Vec::new();
                    if pa != Pauli::I {
                        f.push((a, pa));
                    }
                    if pb != Pauli::I {
                        f.push((b, pb));
                    }
                    out.push(f);
                }
            }
            out
        }
    }
}

/// Runs the full protocol with one injected circuit fault and returns
/// whether the decoded logical Z flipped.
fn logical_error_with_fault(
    lat: &RotatedLattice,
    sc: &SyndromeCircuit,
    gate_index: usize,
    fault: &[(usize, Pauli)],
    seed: u64,
) -> bool {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Tableau::new(lat.num_qubits());

    // Round 0: projection (clean). Rounds 1: faulty. Rounds 2–3: clean.
    let r0 = sc.run_round(&mut t, &mut rng);
    let r1 = sc.run_round_with_fault(&mut t, gate_index, fault, &mut rng);
    let r2 = sc.run_round(&mut t, &mut rng);
    let r3 = sc.run_round(&mut t, &mut rng);

    // Final transversal Z readout.
    let bits: Vec<bool> = (0..lat.num_data())
        .map(|q| t.measure(q, &mut rng).value)
        .collect();
    let final_checks: Vec<bool> = lat
        .plaquettes_of(StabKind::Z)
        .map(|p| p.data.iter().fold(false, |acc, &q| acc ^ bits[q]))
        .collect();

    // Detection events over 4 measured rounds + final round (Z checks
    // are deterministic from |0…0⟩, reference all-false).
    let records = [&r0.z, &r1.z, &r2.z, &r3.z];
    let graph = DecodingGraph::with_diagonals(lat, StabKind::Z, records.len() + 1);
    let mut events = Vec::new();
    for (t_idx, rec) in records.iter().enumerate() {
        for c in 0..graph.num_checks() {
            let prev = if t_idx == 0 {
                false
            } else {
                records[t_idx - 1][c]
            };
            if rec[c] != prev {
                events.push(graph.node(t_idx, c));
            }
        }
    }
    for c in 0..graph.num_checks() {
        if final_checks[c] != records[records.len() - 1][c] {
            events.push(graph.node(records.len(), c));
        }
    }

    let correction = ExactMatchingDecoder::new().decode(&graph, &events);
    let mut corrected = bits;
    for &q in &correction.data_flips {
        corrected[q] = !corrected[q];
    }
    (0..lat.distance())
        .map(|col| corrected[lat.data_index(0, col)])
        .fold(false, |acc, b| acc ^ b)
}

/// Every single circuit fault (including CNOT hook faults) is corrected
/// at d = 5. This is the distance-preservation property of the
/// interleaved schedule.
#[test]
fn every_single_circuit_fault_is_tolerated_d5() {
    let lat = RotatedLattice::new(5);
    let sc = SyndromeCircuit::new(&lat);
    let gates: Vec<_> = sc.round_circuit().iter().copied().collect();
    let mut injected = 0u32;
    for (gi, g) in gates.iter().enumerate() {
        // Faults *after* a measurement landed post-readout; still valid
        // to test (they hit the next round).
        for fault in faults_for(*g) {
            injected += 1;
            assert!(
                !logical_error_with_fault(&lat, &sc, gi, &fault, 0xFA017 + gi as u64),
                "gate {gi} ({g}) with fault {fault:?} broke logical Z"
            );
        }
    }
    // Sanity: the campaign actually covered a large fault set.
    assert!(injected > 400, "only {injected} faults injected");
}

/// The same campaign at d = 3 must also pass: a *single* fault is within
/// ⌊(3−1)/2⌋ = 1 even when a hook fault deposits two data errors, because
/// a correct schedule aligns hooks perpendicular to the logical operator.
#[test]
fn single_faults_tolerated_even_at_d3() {
    let lat = RotatedLattice::new(3);
    let sc = SyndromeCircuit::new(&lat);
    let gates: Vec<_> = sc.round_circuit().iter().copied().collect();
    let mut failures = Vec::new();
    for (gi, g) in gates.iter().enumerate() {
        for fault in faults_for(*g) {
            if logical_error_with_fault(&lat, &sc, gi, &fault, 0xD3 + gi as u64) {
                failures.push((gi, *g, fault));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} single faults broke d=3: {:?}",
        failures.len(),
        &failures[..failures.len().min(5)]
    );
}
