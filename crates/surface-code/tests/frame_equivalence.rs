//! Exactness and determinism of the bit-parallel frame sampler.
//!
//! The frame fast path is only admissible because it is *exactly*
//! equivalent to the tableau path, not an approximation: for any fixed
//! physical fault pattern (per-round data Paulis + measurement flips),
//! both paths must produce bit-for-bit identical detection events and the
//! same uncorrected logical readout parity. These tests pin that down over
//! randomized fault patterns at d ∈ {3, 5} in both bases, under
//! code-capacity (data errors only) and phenomenological (data +
//! measurement-flip) fault shapes — and additionally pin the batch
//! sampler's determinism: invariance under internal batch size and under
//! the threshold sweep's worker count.

use quest_stabilizer::{Pauli, PauliChannel, Rng, SeedableRng, StdRng};
use quest_surface::{
    BatchOutcome, Correction, Decoder, DecodingGraph, EarlyExit, FrameSampler, LaneWidth,
    MemoryBasis, MemoryExperiment, MemoryNoise, NodeId, SamplerConfig, SweepConfig, ThresholdSweep,
    UnionFindDecoder,
};

/// Draws a random fault pattern: per-round per-data-qubit Paulis (density
/// `p_err`) and per-round per-check measurement flips (density `p_flip`).
fn random_faults(
    exp: &MemoryExperiment,
    num_checks: usize,
    p_err: f64,
    p_flip: f64,
    rng: &mut StdRng,
) -> (Vec<Vec<Pauli>>, Vec<Vec<bool>>) {
    let errors = (0..exp.rounds())
        .map(|_| {
            (0..exp.lattice().num_data())
                .map(|_| {
                    if rng.gen::<f64>() < p_err {
                        Pauli::ERRORS[rng.gen_range(0..3)]
                    } else {
                        Pauli::I
                    }
                })
                .collect()
        })
        .collect();
    let flips = (0..exp.rounds())
        .map(|_| (0..num_checks).map(|_| rng.gen::<f64>() < p_flip).collect())
        .collect();
    (errors, flips)
}

fn assert_paths_agree(d: usize, basis: MemoryBasis, p_err: f64, p_flip: f64, trials: usize) {
    let exp = MemoryExperiment::new(d, d, basis);
    let sampler = FrameSampler::new(&exp);
    let num_checks = sampler.graph().num_checks();
    let mut rng = StdRng::seed_from_u64(0xD1CE + d as u64 + (p_flip.to_bits() >> 50));
    for trial in 0..trials {
        let (errors, flips) = random_faults(&exp, num_checks, p_err, p_flip, &mut rng);
        let (frame_events, frame_logical) = sampler.faulted_shot_events(&errors, &flips);
        let (tab_events, tab_logical) = exp.faulted_shot_events(&errors, &flips, &mut rng);
        assert_eq!(
            frame_events, tab_events,
            "detection events diverged: d={d}, {basis:?}, trial {trial}"
        );
        assert_eq!(
            frame_logical, tab_logical,
            "logical parity diverged: d={d}, {basis:?}, trial {trial}"
        );
    }
}

#[test]
fn frame_matches_tableau_code_capacity() {
    for d in [3usize, 5] {
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            assert_paths_agree(d, basis, 0.08, 0.0, 40);
        }
    }
}

#[test]
fn frame_matches_tableau_phenomenological() {
    for d in [3usize, 5] {
        for basis in [MemoryBasis::Z, MemoryBasis::X] {
            assert_paths_agree(d, basis, 0.05, 0.05, 40);
        }
    }
}

#[test]
fn frame_matches_tableau_at_high_error_density() {
    // Dense faults exercise frame composition across rounds (errors
    // stacking on the same qubit, Y components, flip cancellation).
    assert_paths_agree(3, MemoryBasis::Z, 0.35, 0.25, 30);
    assert_paths_agree(3, MemoryBasis::X, 0.35, 0.25, 30);
}

#[test]
fn single_faults_agree_exhaustively() {
    // Every single-qubit Pauli in every round, and every single
    // measurement flip, one at a time — the minimal generators of any
    // fault pattern.
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::new(3, 3, basis);
        let sampler = FrameSampler::new(&exp);
        let num_checks = sampler.graph().num_checks();
        let num_data = exp.lattice().num_data();
        let mut rng = StdRng::seed_from_u64(17);
        for round in 0..exp.rounds() {
            for q in 0..num_data {
                for p in Pauli::ERRORS {
                    let mut errors = vec![vec![Pauli::I; num_data]; exp.rounds()];
                    errors[round][q] = p;
                    let flips = vec![vec![false; num_checks]; exp.rounds()];
                    let (fe, fl) = sampler.faulted_shot_events(&errors, &flips);
                    let (te, tl) = exp.faulted_shot_events(&errors, &flips, &mut rng);
                    assert_eq!(fe, te, "{basis:?}: {p} on qubit {q}, round {round}");
                    assert_eq!(fl, tl, "{basis:?}: {p} on qubit {q}, round {round}");
                }
            }
            for c in 0..num_checks {
                let errors = vec![vec![Pauli::I; num_data]; exp.rounds()];
                let mut flips = vec![vec![false; num_checks]; exp.rounds()];
                flips[round][c] = true;
                let (fe, fl) = sampler.faulted_shot_events(&errors, &flips);
                let (te, tl) = exp.faulted_shot_events(&errors, &flips, &mut rng);
                assert_eq!(fe, te, "{basis:?}: flip on check {c}, round {round}");
                assert_eq!(fl, tl, "{basis:?}: flip on check {c}, round {round}");
            }
        }
    }
}

#[test]
fn run_batch_is_invariant_under_batch_size() {
    let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
    let sampler = FrameSampler::new(&exp);
    let noise = MemoryNoise::phenomenological(0.02);
    let uf = UnionFindDecoder::new();
    // 1000 shots spans multiple 64-chunks and 256-chunks with a ragged
    // tail in both splits.
    let small = sampler.run_batch_chunked(&noise, &uf, 1000, 42, 64);
    let large = sampler.run_batch_chunked(&noise, &uf, 1000, 42, 256);
    let whole = sampler.run_batch_chunked(&noise, &uf, 1000, 42, 1000);
    assert_eq!(small, large, "chunk 64 vs 256 must be bit-identical");
    assert_eq!(
        small, whole,
        "chunked vs single-batch must be bit-identical"
    );
    // And a different seed must actually change the sample.
    let other = sampler.run_batch_chunked(&noise, &uf, 1000, 43, 256);
    assert_ne!(
        small.detection_events, other.detection_events,
        "different seeds should differ"
    );
}

#[test]
fn threshold_run_batch_is_invariant_under_worker_count() {
    let uf = UnionFindDecoder::new();
    let distances = [3usize, 5];
    let rates = [5e-3, 2e-2, 5e-2];
    let one = ThresholdSweep::run_batch(&distances, &rates, 1500, &uf, 0xBEEF, 1);
    let four = ThresholdSweep::run_batch(&distances, &rates, 1500, &uf, 0xBEEF, 4);
    assert_eq!(one, four, "worker count must not change the sweep");
    assert_eq!(one.points.len(), distances.len() * rates.len());
    // Canonical (distance, p) order regardless of completion order.
    for (i, pt) in one.points.iter().enumerate() {
        assert_eq!(pt.distance, distances[i / rates.len()]);
        assert_eq!(pt.p, rates[i % rates.len()]);
    }
}

/// Wraps a decoder but inherits the *default* `decode_planes` (scatter to
/// sparse sets, then `decode_many`) — so a batch run through it exercises
/// the sparse handoff even where the sampler would pick the plane path.
#[derive(Debug)]
struct ForceSparse<D>(D);

impl<D: Decoder> Decoder for ForceSparse<D> {
    fn decode(&self, graph: &DecodingGraph, events: &[NodeId]) -> Correction {
        self.0.decode(graph, events)
    }

    fn decode_many(&self, graph: &DecodingGraph, event_sets: &[Vec<NodeId>]) -> Vec<Correction> {
        self.0.decode_many(graph, event_sets)
    }
}

fn run_width(
    sampler: &FrameSampler,
    noise: &MemoryNoise,
    shots: usize,
    seed: u64,
    width: LaneWidth,
    chunk_shots: usize,
) -> BatchOutcome {
    let cfg = SamplerConfig {
        width,
        chunk_shots,
        ..SamplerConfig::default()
    };
    sampler.run_batch_configured(noise, &UnionFindDecoder::new(), shots, seed, &cfg)
}

#[test]
fn run_batch_is_invariant_under_lane_width() {
    // 64-, 256- and 512-bit plane words over the same (shots, seed) must
    // produce bit-identical outcomes, including at a non-multiple-of-64
    // shot count and across different chunkings per width.
    let exp = MemoryExperiment::new(5, 5, MemoryBasis::Z);
    let sampler = FrameSampler::new(&exp);
    let noise = MemoryNoise::phenomenological(0.03);
    for shots in [1000usize, 4096] {
        let narrow = run_width(&sampler, &noise, shots, 0xA11CE, LaneWidth::X1, 4096);
        for width in [LaneWidth::X4, LaneWidth::X8] {
            for chunk in [512usize, 4096] {
                let wide = run_width(&sampler, &noise, shots, 0xA11CE, width, chunk);
                assert_eq!(
                    narrow,
                    wide,
                    "width {} chunk {chunk} diverged at {shots} shots",
                    width.name()
                );
            }
        }
        assert!(narrow.detection_events > 0);
    }
}

#[test]
fn threshold_sweep_is_invariant_under_width_and_workers() {
    let uf = UnionFindDecoder::new();
    let distances = [3usize, 5];
    let rates = [5e-3, 5e-2];
    let reference = ThresholdSweep::run_batch(&distances, &rates, 1024, &uf, 0xFEED, 1);
    for width in [LaneWidth::X1, LaneWidth::X4] {
        for workers in [1usize, 3] {
            let cfg = SweepConfig {
                width,
                workers,
                early_exit: None,
            };
            let sweep =
                ThresholdSweep::run_batch_configured(&distances, &rates, 1024, &uf, 0xFEED, &cfg);
            assert_eq!(
                reference,
                sweep,
                "width {} workers {workers} changed the sweep",
                width.name()
            );
        }
    }
}

#[test]
fn exact_shot_counts_scale_deterministic_noise_linearly() {
    // bit_flip(1.0) errors every data qubit and measurement_flip 1.0
    // flips every record bit, in every shot identically — so every
    // per-shot tally is the same and totals must scale exactly with the
    // requested shot count. This is the tail-masking regression test: a
    // padded dead lane would break linearity at non-multiples of 64.
    let exp = MemoryExperiment::new(3, 2, MemoryBasis::Z);
    let sampler = FrameSampler::new(&exp);
    let noise = MemoryNoise {
        data: PauliChannel::bit_flip(1.0),
        measurement_flip: 1.0,
    };
    let uf = UnionFindDecoder::new();
    let per_shot = sampler.run_batch(&noise, &uf, 1, 7);
    assert_eq!(per_shot.shots, 1);
    assert!(per_shot.detection_events > 0);
    for shots in [64usize, 65, 100, 128, 1000] {
        let out = sampler.run_batch(&noise, &uf, shots, 7);
        assert_eq!(out.shots, shots);
        assert_eq!(
            out.detection_events,
            shots * per_shot.detection_events,
            "{shots} shots"
        );
        assert_eq!(out.failures, shots * per_shot.failures);
        assert_eq!(out.correction_weight, shots * per_shot.correction_weight);
    }
}

#[test]
fn plane_and_sparse_decode_paths_agree_end_to_end() {
    // At p = 0.08 the event density is far above the plane-decode cutoff,
    // so the plain run takes the plane-batched path; ForceSparse inherits
    // the default scatter path. Outcomes must be bit-identical.
    let exp = MemoryExperiment::new(5, 5, MemoryBasis::Z);
    let sampler = FrameSampler::new(&exp);
    let uf = UnionFindDecoder::new();
    for p in [0.08f64, 0.01, 1e-3] {
        let noise = MemoryNoise::code_capacity(p);
        let plane = sampler.run_batch(&noise, &uf, 2000, 0xCAFE);
        let sparse = sampler.run_batch(&noise, &ForceSparse(UnionFindDecoder::new()), 2000, 0xCAFE);
        assert_eq!(plane, sparse, "paths diverged at p = {p}");
    }
}

#[test]
fn early_exit_preserves_crossing_verdicts_at_pinned_point() {
    // The CI contract: early exit may shorten points but must not change
    // a crossing verdict. Pinned bracket [4e-3, 5e-2] at d in {3, 5}.
    let uf = UnionFindDecoder::new();
    let distances = [3usize, 5];
    let rates = [4e-3, 5e-2];
    let full = ThresholdSweep::run_batch(&distances, &rates, 4096, &uf, 0xC0DE, 1);
    let cfg = SweepConfig {
        early_exit: Some(EarlyExit::default()),
        ..SweepConfig::default()
    };
    let early = ThresholdSweep::run_batch_configured(&distances, &rates, 4096, &uf, 0xC0DE, &cfg);
    assert_eq!(
        full.crossing_below(3, 5),
        early.crossing_below(3, 5),
        "early exit changed the d3/d5 crossing verdict"
    );
    // Above threshold the early run must actually have stopped short.
    let stopped = early.points.iter().any(|pt| pt.shots < 4096);
    assert!(
        stopped,
        "early exit never fired on an above-threshold point"
    );
    // And early-exited sweeps are themselves width-invariant.
    let wide_cfg = SweepConfig {
        width: LaneWidth::X1,
        ..cfg
    };
    let early_narrow =
        ThresholdSweep::run_batch_configured(&distances, &rates, 4096, &uf, 0xC0DE, &wide_cfg);
    assert_eq!(early, early_narrow, "early exit is width-dependent");
}

#[test]
fn batch_and_legacy_sample_the_same_distribution() {
    // Not bit-identical (different RNG streams) but the same physics:
    // compare logical rates at a point where both are well-resolved.
    let exp = MemoryExperiment::new(3, 3, MemoryBasis::Z);
    let noise = MemoryNoise::code_capacity(0.05);
    let uf = UnionFindDecoder::new();
    let batch = exp.logical_error_rate_batch(&noise, &uf, 8000, 3);
    let mut rng = StdRng::seed_from_u64(3);
    let legacy = exp.logical_error_rate(&noise, &uf, 2000, &mut rng);
    assert!(
        (batch - legacy).abs() < 0.025,
        "batch rate {batch} vs legacy rate {legacy}"
    );
}
