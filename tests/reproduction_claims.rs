//! The paper's quantitative claims, asserted as tests. Each test cites
//! the section it reproduces; EXPERIMENTS.md holds the side-by-side
//! numbers.

use quest::arch::jj::MemoryConfig;
use quest::arch::microcode::MicrocodeDesign;
use quest::arch::throughput::{figure11_point, table2};
use quest::arch::TechnologyParams;
use quest::estimate::{analyze_suite, ShorEstimate};
use quest::surface::SyndromeDesign;

/// §3.3: "each physical qubit ... requires 100 MB/s of instruction
/// bandwidth" and "a quantum computer with 100,000 qubits will require
/// 10 TB/s".
#[test]
fn claim_per_qubit_bandwidth() {
    use quest::arch::tech::baseline_bandwidth_bytes_per_s;
    assert_eq!(baseline_bandwidth_bytes_per_s(1.0), 100e6);
    assert_eq!(baseline_bandwidth_bytes_per_s(1e5), 1e13);
}

/// §1/Figure 2: factoring a 1024-bit number needs millions of qubits and
/// an instruction bandwidth in the 100 TB/s regime.
#[test]
fn claim_shor_1024_regime() {
    let s = ShorEstimate::new(1024, 1e-4);
    assert!(s.physical_qubits >= 1e6 && s.physical_qubits < 1e8);
    assert!(s.baseline_bandwidth() >= 1e14 * 0.5);
}

/// Abstract: "99.999% of the instructions ... stem from error
/// correction" — the QECC-to-algorithmic ratio exceeds 10^5 for every
/// workload.
#[test]
fn claim_qecc_dominance() {
    for e in analyze_suite(1e-4) {
        assert!(
            e.qecc_to_logical_ratio() > 1e5,
            "{}: {}",
            e.workload.name,
            e.qecc_to_logical_ratio()
        );
    }
}

/// §7/Figure 14: MCEs reduce instruction bandwidth by at least five
/// orders of magnitude; with logical caching the total reaches roughly
/// eight.
#[test]
fn claim_headline_savings() {
    let suite = analyze_suite(1e-4);
    for e in &suite {
        assert!(e.mce_savings() >= 1e5, "{}", e.workload.name);
    }
    let best_total = suite
        .iter()
        .map(quest::estimate::BandwidthEstimate::cached_savings)
        .fold(0.0f64, f64::max);
    assert!(best_total >= 1e8, "best total savings {best_total:.2e}");
}

/// §4.5: a 4 Kb RAM microcode holds ~48 qubits of QECC instructions; the
/// FIFO optimization improves scalability 3–4x; four channels give 6x the
/// bandwidth of one.
#[test]
fn claim_microcode_design_anchors() {
    let tech = TechnologyParams::PROJECTED_F;
    let ram = figure11_point(MicrocodeDesign::Ram, 1, &tech);
    let fifo = figure11_point(MicrocodeDesign::Fifo, 1, &tech);
    assert!((40..=55).contains(&ram), "RAM {ram}");
    assert!(((ram * 2)..=(ram * 5)).contains(&fifo), "FIFO {fifo}");
    let one = MemoryConfig::new(1, 4096).bandwidth_bits_per_s();
    let four = MemoryConfig::new(4, 1024).bandwidth_bits_per_s();
    assert!((four / one - 6.0).abs() < 1e-9);
}

/// §4 headline: the unit-cell design lets each MCE support about 90x (or
/// more) qubits than the unoptimized design.
#[test]
fn claim_unit_cell_90x() {
    let tech = TechnologyParams::PROJECTED_F;
    let ram = figure11_point(MicrocodeDesign::Ram, 4, &tech);
    let uc = figure11_point(MicrocodeDesign::UnitCell, 4, &tech);
    let gain = uc as f64 / ram as f64;
    assert!(gain >= 30.0, "unit-cell gain {gain} (paper: ~90x)");
}

/// Table 2: optimal configurations, JJ counts and power, exactly.
#[test]
fn claim_table2_exact() {
    let rows = table2(&TechnologyParams::PROJECTED_F);
    let expected = [
        ("Steane", 4usize, 170_048u64, 2.1e-6f64),
        ("Shor", 2, 168_264, 1.1e-6),
        ("SC-17", 8, 163_472, 5.6e-6),
        ("SC-13", 4, 170_048, 2.1e-6),
    ];
    for (row, (name, ch, jj, p)) in rows.iter().zip(expected) {
        assert_eq!(row.design.name, name);
        assert_eq!(row.config.channels(), ch);
        assert_eq!(row.jj_count, jj);
        assert!((row.power_w - p).abs() < 1e-12);
    }
}

/// §5.2: T gates constitute 25–30% of the instruction stream and appear
/// roughly every third instruction.
#[test]
fn claim_t_gate_density() {
    for e in analyze_suite(1e-4) {
        let tf = e.workload.t_fraction;
        assert!((0.2..=0.35).contains(&tf), "{}", e.workload.name);
    }
}

/// §5.3: a typical distillation kernel (100–200 logical instructions)
/// cached in the instruction buffer cuts logical bandwidth by orders of
/// magnitude.
#[test]
fn claim_cache_gain() {
    use quest::arch::instruction_pipeline::cache_bandwidth_ratio;
    let gain = cache_bandwidth_ratio(150, 100_000);
    assert!(gain > 100.0);
    // And two-level-distillation workloads see ~3 orders end to end.
    let gse = &analyze_suite(1e-4)[2];
    assert_eq!(gse.workload.name, "GSE");
    let extra = gse.cached_savings() / gse.mce_savings();
    assert!((300.0..3000.0).contains(&extra), "extra {extra}");
}

/// Figure 16's orderings: slower experimental qubits allow more qubits
/// per MCE; SC-17 dominates all designs at every technology.
#[test]
fn claim_figure16_orderings() {
    use quest::arch::throughput::figure16_point;
    for d in &SyndromeDesign::ALL {
        let xs: Vec<usize> = TechnologyParams::ALL
            .iter()
            .map(|t| figure16_point(d, t))
            .collect();
        assert!(xs[0] > xs[1] && xs[1] > xs[2], "{}: {xs:?}", d.name);
    }
    for t in &TechnologyParams::ALL {
        let sc17 = figure16_point(&SyndromeDesign::SC17, t);
        for d in &SyndromeDesign::ALL {
            assert!(figure16_point(d, t) <= sc17);
        }
    }
}
