//! End-to-end chaos soak: seeded fault storms against the full serving
//! stack, asserting the crash-safety invariants the robustness PR
//! provides — no hangs, exactly one terminal event per job, conserved
//! quotas and backlog after drain, and bit-identical reports for every
//! job that recovered to `Done`.
//!
//! The storm logic lives in `quest_serve::chaos` (shared with the
//! `quest-cli chaos` subcommand); this test is the repo-level soak that
//! CI runs. The default profile keeps the suite fast; setting
//! `QUEST_FAULT_HEAVY=1` (the CI chaos-soak job does) widens the
//! campaign to ≥ 10 seeds with more jobs per seed.

use quest_serve::chaos::{run_chaos, ChaosConfig};
use std::time::Duration;

/// Wider campaign under `QUEST_FAULT_HEAVY=1`.
fn heavy() -> bool {
    std::env::var_os("QUEST_FAULT_HEAVY").is_some_and(|v| v != "0" && !v.is_empty())
}

#[test]
fn chaos_soak_holds_every_invariant() {
    let config = if heavy() {
        ChaosConfig::default()
            .with_seeds(10)
            .with_jobs_per_seed(10)
            .with_workers(3)
            .with_timeout(Duration::from_secs(120))
    } else {
        ChaosConfig::default().with_seeds(3).with_jobs_per_seed(8)
    };
    let report = run_chaos(&config);
    assert!(report.ok(), "{report}");
    assert_eq!(report.seeds_run, config.seeds);
    assert_eq!(
        report.jobs_submitted,
        config.seeds * config.jobs_per_seed as u64,
        "every job must be admitted"
    );
    assert_eq!(
        report.jobs_done
            + report.jobs_cancelled
            + report.jobs_failed
            + report.jobs_deadline_exceeded,
        report.jobs_submitted,
        "every admitted job reaches exactly one terminal state: {report}"
    );
    assert!(
        report.jobs_retried > 0,
        "a fault storm with scheduled crashes must exercise the retry path: {report}"
    );
}

/// The storm itself is deterministic: with cancellations disabled (their
/// outcomes race with completion by design), two identical campaigns
/// produce identical outcome counts.
#[test]
fn chaos_campaigns_replay_deterministically() {
    let config = ChaosConfig::default()
        .with_seeds(2)
        .with_jobs_per_seed(6)
        .with_cancel_percent(0);
    let a = run_chaos(&config);
    let b = run_chaos(&config);
    assert!(a.ok(), "{a}");
    assert_eq!(a, b, "same config, same storm, same report");
}
