//! Fault-tolerance integration: the complete QuEST machine (microcode
//! replay → execution unit → two-level decoding → Pauli frame) must
//! actually protect logical information, exactly as the standalone
//! memory-experiment harness does.

use quest::arch::{DeliveryMode, QuestSystem};
use quest::isa::LogicalProgram;
use quest::stabilizer::{SeedableRng, StdRng};
use quest::surface::{
    ExactMatchingDecoder, MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder,
};

/// At a low error rate, the full system preserves logical |0> in nearly
/// every run; at p = 0 it always does.
#[test]
fn system_preserves_logical_zero() {
    let mut failures = 0;
    let shots = 30;
    for seed in 0..shots {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = QuestSystem::new(3, 1e-3).unwrap();
        let run = sys.run_memory_workload(
            30,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        failures += (!run.logical_ok()) as u32;
    }
    assert!(
        failures <= 2,
        "{failures}/{shots} logical failures at p=1e-3"
    );
}

/// The system-level logical failure rate tracks the standalone memory
/// experiment within statistical noise (same physics, different plumbing).
#[test]
fn system_failure_rate_matches_memory_experiment() {
    let p = 8e-3;
    let shots = 150;
    let cycles = 3;

    let mut sys_failures = 0;
    for seed in 0..shots {
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let mut sys = QuestSystem::new(3, p).unwrap();
        let run = sys.run_memory_workload(
            cycles,
            &LogicalProgram::new(),
            0,
            DeliveryMode::QuestMce,
            &mut rng,
        );
        sys_failures += (!run.logical_ok()) as u32;
    }
    let sys_rate = sys_failures as f64 / shots as f64;

    let exp = MemoryExperiment::new(3, cycles as usize, MemoryBasis::Z);
    let noise = MemoryNoise {
        data: quest::stabilizer::PauliChannel::depolarizing(p),
        measurement_flip: 0.0,
    };
    let mut rng = StdRng::seed_from_u64(9);
    let exp_rate =
        exp.logical_error_rate(&noise, &UnionFindDecoder::new(), shots as usize, &mut rng);

    assert!(
        (sys_rate - exp_rate).abs() < 0.08,
        "system {sys_rate} vs experiment {exp_rate}"
    );
}

/// Union-find and exact matching agree on logical outcomes for moderate
/// noise at d = 3 (both correct all single errors; they may differ only
/// on multi-error shots).
#[test]
fn decoders_agree_on_suppression() {
    let noise = MemoryNoise::code_capacity(6e-3);
    let shots = 300;
    let exp = MemoryExperiment::new(3, 2, MemoryBasis::Z);
    let mut rng = StdRng::seed_from_u64(31);
    let uf = exp.logical_error_rate(&noise, &UnionFindDecoder::new(), shots, &mut rng);
    let mut rng = StdRng::seed_from_u64(31);
    let ex = exp.logical_error_rate(&noise, &ExactMatchingDecoder::new(), shots, &mut rng);
    assert!(uf < 0.05, "union-find rate {uf}");
    assert!(ex < 0.05, "exact rate {ex}");
    assert!((uf - ex).abs() < 0.04, "uf {uf} vs exact {ex}");
}

/// Both memory bases are protected through the standalone harness at
/// realistic phenomenological noise.
#[test]
fn both_bases_suppress_at_low_noise() {
    for basis in [MemoryBasis::Z, MemoryBasis::X] {
        let exp = MemoryExperiment::new(3, 3, basis);
        let noise = MemoryNoise::phenomenological(1e-3);
        let mut rng = StdRng::seed_from_u64(55);
        let rate = exp.logical_error_rate(&noise, &UnionFindDecoder::new(), 200, &mut rng);
        assert!(rate < 0.03, "{basis:?}: rate {rate}");
    }
}
