//! Smoke tests for the `quest-cli` binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_quest-cli"))
}

#[test]
fn table2_prints_all_four_designs() {
    let out = cli().arg("table2").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["Steane", "Shor", "SC-17", "SC-13"] {
        assert!(text.contains(name), "missing {name}");
    }
    assert!(text.contains("170048"));
}

#[test]
fn report_covers_the_suite() {
    let out = cli().arg("report").output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    for name in ["BWT", "BF", "GSE", "FeMoCo", "QLS", "SHOR", "TFP"] {
        assert!(text.contains(name), "missing {name}");
    }
}

#[test]
fn shor_reports_millions_of_qubits() {
    let out = cli().args(["shor", "1024"]).output().expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("physical qubits"));
    assert!(text.contains("TB/s"));
}

#[test]
fn asm_reads_stdin() {
    let mut child = cli()
        .args(["asm", "-"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"lh L0\nlt L0\nlcnot L0 L1\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("assembled 3 instructions"));
    assert!(text.contains("T gates      : 1"));
}

#[test]
fn asm_reports_line_errors() {
    let mut child = cli()
        .args(["asm", "-"])
        .stdin(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"lh L0\nbogus L1\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("line 2"), "{err}");
}

#[test]
fn unknown_subcommand_fails_with_usage() {
    let out = cli().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("usage"));
}

#[test]
fn invalid_spec_exits_with_one_line_diagnostic() {
    // An invalid workload spec must produce a single-line typed
    // diagnostic on stderr and a failure exit code — never a panic
    // backtrace.
    let cases: [&[&str]; 5] = [
        &["run", "--distance", "2"],
        &["run", "--tiles", "0"],
        &["run", "--error-rate", "1.5"],
        &["run", "--tiles", "2", "--shards", "3"],
        &["simulate", "2", "1e-3", "10"],
    ];
    for args in cases {
        let out = cli().args(args).output().expect("binary runs");
        assert!(!out.status.success(), "{args:?} must fail");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.starts_with("error: "), "{args:?}: {err}");
        assert_eq!(err.trim_end().lines().count(), 1, "{args:?}: {err}");
        assert!(
            !err.contains("panicked") && !err.contains("RUST_BACKTRACE"),
            "{args:?} panicked: {err}"
        );
    }
}

#[test]
fn run_executes_bell_workload_sharded() {
    let out = cli()
        .args([
            "run",
            "--workload",
            "bell",
            "--tiles",
            "4",
            "--shards",
            "2",
            "--cycles",
            "5",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("bus bytes"), "{text}");
    assert!(text.contains("4 tiles read out"), "{text}");
}

#[test]
fn simulate_runs_all_three_modes() {
    let out = cli()
        .args(["simulate", "3", "1e-3", "30"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("SoftwareBaseline"));
    assert!(text.contains("QuestMce"));
    assert!(text.contains("QuestMceCache"));
    assert!(text.contains("logical OK"));
}
