//! Bandwidth report: the paper's headline analysis for all seven
//! workloads at one operating point, printed as a single table.
//!
//! ```sh
//! cargo run --example bandwidth_report
//! ```

use quest::estimate::analyze_suite;

fn main() {
    let p = 1e-4;
    println!("Instruction-bandwidth analysis at p = {p:.0e} (Projected_D, Steane syndrome)\n");
    println!(
        "{:>8} {:>6} {:>14} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "workload",
        "d",
        "phys qubits",
        "baseline B/s",
        "QuEST B/s",
        "cached B/s",
        "MCE x",
        "total x"
    );
    for e in analyze_suite(p) {
        println!(
            "{:>8} {:>6} {:>14.2e} {:>14.2e} {:>14.2e} {:>14.2e} {:>10.1e} {:>10.1e}",
            e.workload.name,
            e.distance,
            e.physical_qubits,
            e.baseline,
            e.quest_mce,
            e.quest_cached,
            e.mce_savings(),
            e.cached_savings(),
        );
    }
    println!(
        "\nHardware-managed QECC removes ≥10^5 of the instruction bandwidth;\n\
         caching the magic-state-distillation kernels removes the bulk of the\n\
         rest, for ~10^8 total — the paper's Figure 14."
    );
}
