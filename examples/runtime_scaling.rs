//! Shard-count scaling of the concurrent multi-tile runtime.
//!
//! Runs the same fixed-seed memory workload (8 tiles at d = 5) at shard
//! counts 1, 2 and 4 and prints each run's `RuntimeStats`. The logical
//! outcomes and bus-byte totals are identical at every shard count —
//! that is the runtime's determinism guarantee — while wall-clock drops
//! because each shard's tableau spans only its own tiles and CHP cost
//! grows quadratically with tableau width.
//!
//! ```sh
//! cargo run --release --example runtime_scaling
//! ```

use quest::runtime::{Runtime, WorkloadSpec};
use std::time::Instant;

fn main() {
    let mut spec = WorkloadSpec::memory(5, 8, 1, 1e-2, 11, 40);
    println!(
        "memory workload: {} tiles at d={}, p={:.0e}, {} cycles, seed {}\n",
        spec.tiles, spec.distance, spec.error_rate, 40, spec.seed
    );

    let mut baseline = None;
    for shards in [1usize, 2, 4] {
        spec.shards = shards;
        let start = Instant::now();
        let report = Runtime::new().run(&spec).expect("valid spec");
        let elapsed = start.elapsed();

        println!("=== {shards} shard(s): {elapsed:.2?} ===");
        println!("{}", report.stats);
        println!("bus bytes: {}\n", report.bus_bytes());

        match baseline {
            None => baseline = Some((report.outcomes.clone(), report.bus_bytes(), elapsed)),
            Some((ref outcomes, bus_bytes, single)) => {
                assert_eq!(&report.outcomes, outcomes, "outcomes diverged");
                assert_eq!(report.bus_bytes(), bus_bytes, "bus bytes diverged");
                println!(
                    "speedup vs 1 shard: {:.2}x\n",
                    single.as_secs_f64() / elapsed.as_secs_f64()
                );
            }
        }
    }
    println!("identical outcomes and bus bytes at every shard count.");
}
