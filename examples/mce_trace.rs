//! MCE trace: watch one Micro-coded Control Engine replay its QECC cycle,
//! absorb an injected error through the local lookup decoder, and execute
//! a masked logical operation — slot by slot.
//!
//! ```sh
//! cargo run --example mce_trace
//! ```

use quest::arch::Mce;
use quest::isa::{MicroOp, PhysOpcode, VliwWord};
use quest::stabilizer::{SeedableRng, StdRng, Tableau};
use quest::surface::{RotatedLattice, StabKind};

fn main() {
    let lattice = RotatedLattice::new(3);
    let mut mce = Mce::new(&lattice, 4096);
    let mut substrate = Tableau::new(lattice.num_qubits());
    let mut rng = StdRng::seed_from_u64(99);

    println!(
        "MCE over a d=3 tile: {} data + {} ancilla qubits, {} words per QECC cycle, {} bits of microcode\n",
        lattice.num_data(),
        lattice.num_ancillas(),
        mce.microcode().cycle_len(),
        mce.microcode().storage_bits(),
    );

    // --- One traced QECC cycle ------------------------------------------
    println!("cycle 1 (projection) — VLIW words issued:");
    for slot in 0..mce.microcode().cycle_len() {
        let word = mce.step(&mut substrate, &mut rng);
        println!("  slot {slot}: {word}");
    }

    // --- Inject an error and watch the local decoder fix it -------------
    let victim = lattice.data_index(1, 1);
    println!("\ninjecting X error on data qubit {victim} …");
    substrate.x(victim);
    mce.run_qecc_cycle(&mut substrate, &mut rng);
    let stats = mce.decode_stats(StabKind::Z);
    println!(
        "after one cycle: {} local decode(s), {} escalation(s), Pauli frame = {:?}",
        stats.local_hits,
        stats.escalations,
        mce.decoder(StabKind::Z).frame()
    );

    // --- Mask a region and issue a logical µop word ----------------------
    println!("\nmasking region 0 (QECC off for its qubits) and queueing a logical X word …");
    mce.mask_mut().set_region(0, true);
    let mut word = VliwWord::nop(lattice.num_qubits());
    word.set(0, MicroOp::simple(PhysOpcode::X));
    mce.queue_logical_word(word);
    let fired = mce.step(&mut substrate, &mut rng);
    println!("fired: {fired}");
    mce.mask_mut().set_region(0, false);

    println!(
        "\nexecution stats: {:?}\ninstruction pipeline: {}",
        mce.execution_stats(),
        mce.instruction_pipeline()
    );
    println!("\nNote what was absent: not one QECC µop arrived from outside the MCE.");
}
