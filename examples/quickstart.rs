//! Quickstart: run an error-corrected memory workload on a simulated
//! QuEST control processor and print the global-bus accounting.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use quest::arch::{DeliveryMode, QuestSystem};
use quest::estimate::kernels::workload_with_kernel;
use quest::estimate::Workload;
use quest::stabilizer::{SeedableRng, StdRng};

fn main() {
    // A distance-5 surface-code tile with depolarizing noise (p = 1e-3
    // per data qubit per QECC round).
    let distance = 5;
    let p = 1e-3;
    let cycles = 300;

    // Workload-shaped logical traffic: a slice of the QLS benchmark plus
    // one real 15-to-1 distillation kernel, replayed 40x.
    let program = workload_with_kernel(&Workload::QLS, 100);

    println!("QuEST quickstart: d={distance} tile, p={p}, {cycles} QECC cycles\n");

    for mode in [
        DeliveryMode::SoftwareBaseline,
        DeliveryMode::QuestMce,
        DeliveryMode::QuestMceCache,
    ] {
        let mut rng = StdRng::seed_from_u64(42);
        let mut system = QuestSystem::new(distance, p).expect("valid parameters");
        let run = system.run_memory_workload(cycles, &program, 40, mode, &mut rng);
        println!("{mode:?}");
        println!("  bus bytes        : {}", run.bus_bytes());
        println!("  logical intact   : {}", run.logical_ok());
        println!(
            "  decoding         : {} local, {} escalated",
            run.local_decodes, run.escalations
        );
        println!("{}", system.master().bus());
        println!();
    }

    println!(
        "The QECC stream never leaves the MCE under QuEST; with the logical\n\
         instruction cache, neither do the distillation kernels. At scale\n\
         (millions of qubits) this asymmetry is the paper's 10^8 bandwidth saving."
    );
}
