//! Shor factoring plan: size the fault-tolerant machine needed to factor
//! moduli of increasing width, and the instruction bandwidth a
//! software-managed control processor would have to sustain.
//!
//! ```sh
//! cargo run --example shor_factoring_plan
//! ```

use quest::estimate::ShorEstimate;

fn main() {
    let p = 1e-4;
    println!("Fault-tolerant Shor sizing at physical error rate {p:.0e}\n");
    println!(
        "{:>6} {:>4} {:>10} {:>8} {:>8} {:>14} {:>14}",
        "bits", "d", "logical", "levels", "T-fact", "phys qubits", "baseline BW"
    );
    for n in [128u32, 256, 512, 1024, 2048] {
        let s = ShorEstimate::new(n, p);
        println!(
            "{:>6} {:>4} {:>10.0} {:>8} {:>8.0} {:>14.2e} {:>11.1} TB/s",
            n,
            s.distance,
            s.logical_qubits,
            s.distillation_levels,
            s.factories,
            s.physical_qubits,
            s.baseline_bandwidth() / 1e12,
        );
    }
    println!(
        "\nEvery row's bandwidth is pure instruction delivery — 99.999% of it\n\
         QECC µops that QuEST keeps inside the MCEs. A software-managed design\n\
         would need a control processor streaming hundreds of TB/s into a\n\
         cryostat; QuEST needs MB/s."
    );
}
