//! Logical Bell pair across two MCE tiles.
//!
//! Goes one step beyond the paper (its footnote 9 leaves cross-MCE
//! logical instructions unevaluated): two distance-3 tiles, each under
//! its own MCE's hardware-managed QECC, are entangled with a transversal
//! logical CNOT coordinated by the master controller. The Bell
//! correlation survives continuous error correction under noise, while
//! the entangling operation costs four bytes of sync tokens on the
//! global bus.
//!
//! ```sh
//! cargo run --release --example logical_bell_pair
//! ```

use quest::arch::multi_tile::{LogicalBasis, MultiTileSystem};
use quest::stabilizer::{SeedableRng, StdRng};

fn main() {
    let shots = 50;
    let p = 1e-3;
    let mut agree = 0;
    let mut ones = 0;
    let mut bus_total = 0;

    for seed in 0..shots {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sys = MultiTileSystem::new(3, 2, p).unwrap();
        sys.prep_logical(0, LogicalBasis::Plus, &mut rng);
        sys.prep_logical(1, LogicalBasis::Zero, &mut rng);
        sys.run_noisy_cycle(&mut rng); // project both tiles
        sys.transversal_cnot(0, 1, &mut rng)
            .expect("both tiles projected by the cycle above");
        for _ in 0..5 {
            sys.run_noisy_cycle(&mut rng); // hold the pair under QECC
        }
        let a = sys.measure_logical_z(0, &mut rng);
        let b = sys.measure_logical_z(1, &mut rng);
        agree += (a == b) as u32;
        ones += a as u32;
        bus_total += sys.master().bus().total();
    }

    println!("logical Bell pair over two MCE tiles (d=3, p={p}, 5 QECC cycles of storage)");
    println!("  Z ⊗ Z agreement : {agree}/{shots} shots");
    println!(
        "  P(outcome = 1)  : {:.2} (expect ~0.5)",
        ones as f64 / shots as f64
    );
    println!(
        "  mean bus bytes  : {:.0} per shot (sync + escalations only)",
        bus_total as f64 / shots as f64
    );
    assert!(agree as f64 / shots as f64 > 0.9);
    println!("\nEntanglement held across tiles with zero QECC instruction traffic.");
}
