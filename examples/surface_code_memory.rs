//! Surface-code logical memory: logical error rate vs. physical error
//! rate for several code distances, decoded with the union-find decoder.
//!
//! This is the substrate experiment underneath the whole paper: QECC
//! cycles must run continuously and be decoded correctly, or logical
//! qubits decay. Below threshold, increasing the distance suppresses the
//! logical error rate — the property the MCE's deterministic µop replay
//! exists to protect.
//!
//! ```sh
//! cargo run --release --example surface_code_memory
//! ```

use quest::stabilizer::{SeedableRng, StdRng};
use quest::surface::{MemoryBasis, MemoryExperiment, MemoryNoise, UnionFindDecoder};

fn main() {
    let shots = 400;
    let decoder = UnionFindDecoder::new();
    let physical_rates = [3e-3, 1e-2, 2e-2, 4e-2];
    let distances = [3usize, 5, 7];

    println!("logical error rate per shot ({shots} shots, Z-basis memory, d noisy rounds)\n");
    print!("{:>12}", "p \\ d");
    for d in distances {
        print!("{d:>12}");
    }
    println!();

    for p in physical_rates {
        print!("{p:>12.0e}");
        for d in distances {
            let exp = MemoryExperiment::new(d, d, MemoryBasis::Z);
            let noise = MemoryNoise::code_capacity(p);
            let mut rng = StdRng::seed_from_u64(0xA11CE + d as u64);
            let rate = exp.logical_error_rate(&noise, &decoder, shots, &mut rng);
            print!("{rate:>12.4}");
        }
        println!();
    }

    println!(
        "\nBelow the threshold (p ≲ 1e-2 for this noise model) larger distances\n\
         give lower logical error rates; above it the ordering inverts."
    );
}
