//! `quest-cli` — command-line front end for the QuEST reproduction.
//!
//! Subcommands:
//!
//! * `report [p]` — per-workload bandwidth analysis (default p = 1e-4);
//! * `shor <bits> [p]` — fault-tolerant Shor sizing for one modulus;
//! * `table2` — the optimal microcode configurations (paper Table 2);
//! * `simulate <d> <p> <cycles>` — run the cycle-level system simulation
//!   and print the global-bus accounting;
//! * `run --shards N [options]` — run a multi-tile workload on the
//!   concurrent sharded runtime and print its statistics; `--fault-*`
//!   flags inject deterministic classical faults (packet drop/corrupt
//!   rates, MCE stalls, decode-worker kills) and the report then carries
//!   a recovery summary; `--retries`/`--deadline-cycles`/
//!   `--checkpoint-every` supervise the run locally (checkpointed
//!   retries, a cycle budget) and print a one-line resume summary;
//! * `asm <file>` — assemble a logical program from text and print its
//!   statistics (use `-` for stdin);
//! * `submit [options]` — batch driver for the multi-tenant job server:
//!   submit `--jobs N` memory workloads round-robin across `--tenants T`
//!   onto a `--workers W` pool and print per-job results plus the final
//!   server ledger; the same supervision flags attach a per-job
//!   `RetryPolicy`;
//! * `serve [options]` — interactive job server driven by stdin commands
//!   (`submit`, `cancel`, `status`, `quota`, `drain`);
//! * `chaos [options]` — the chaos-soak harness: seeded fault storms
//!   against a live server with all crash-safety invariants checked;
//!   exits nonzero on any violation.

#![forbid(unsafe_code)]

use quest::arch::throughput::table2;
use quest::arch::{DeliveryMode, QuestSystem, TechnologyParams};
use quest::estimate::kernels::workload_with_kernel;
use quest::estimate::{analyze_suite, ShorEstimate, Workload};
use quest::runtime::{
    CancelToken, CheckpointSink, DecoderChoice, FaultPlan, RunControl, RunProgress, RunSnapshot,
    Runtime, RuntimeError, RuntimeReport, WorkloadSpec,
};
use quest::serve::chaos::{run_chaos, ChaosConfig};
use quest::serve::{
    disarm, retryable, JobHandle, JobOutcome, RetryPolicy, Server, ServerConfig, TenantId,
    TenantQuota,
};
use quest::stabilizer::{SeedableRng, StdRng};
use std::collections::BTreeMap;
use std::io::BufRead;
use std::io::Read;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("report") => cmd_report(&args[1..]),
        Some("shor") => cmd_shor(&args[1..]),
        Some("table2") => cmd_table2(),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("run") => cmd_run(&args[1..]),
        Some("asm") => cmd_asm(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("chaos") => cmd_chaos(&args[1..]),
        _ => {
            eprintln!(
                "usage: quest-cli <report [p] | shor <bits> [p] | table2 | simulate <d> <p> <cycles> | run --shards N [options] | asm <file> | submit [options] | serve [options] | chaos [options]>"
            );
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn parse_f64(s: &str, what: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn parse_u64(s: &str, what: &str) -> Result<u64, String> {
    s.parse().map_err(|_| format!("invalid {what}: `{s}`"))
}

fn parse_decoder(s: &str) -> Result<DecoderChoice, String> {
    DecoderChoice::parse(s).ok_or_else(|| {
        let names: Vec<&str> = DecoderChoice::ALL.iter().map(|c| c.name()).collect();
        format!("unknown decoder `{s}` (expected {})", names.join(" | "))
    })
}

fn cmd_report(args: &[String]) -> Result<(), String> {
    let p = match args.first() {
        Some(s) => parse_f64(s, "error rate")?,
        None => 1e-4,
    };
    println!("workload bandwidth analysis at p = {p:.0e} (Projected_D, Steane)\n");
    println!(
        "{:>8} {:>4} {:>13} {:>13} {:>13} {:>9} {:>9}",
        "workload", "d", "phys qubits", "baseline", "QuEST+cache", "MCE x", "total x"
    );
    for e in analyze_suite(p) {
        println!(
            "{:>8} {:>4} {:>13.2e} {:>11.1} TB/s {:>9.2e} B/s {:>7.1e} {:>9.1e}",
            e.workload.name,
            e.distance,
            e.physical_qubits,
            e.baseline / 1e12,
            e.quest_cached,
            e.mce_savings(),
            e.cached_savings(),
        );
    }
    Ok(())
}

fn cmd_shor(args: &[String]) -> Result<(), String> {
    let bits = args
        .first()
        .ok_or("shor needs a modulus width in bits")
        .and_then(|s| s.parse::<u32>().map_err(|_| "invalid bit width"))
        .map_err(str::to_owned)?;
    let p = match args.get(1) {
        Some(s) => parse_f64(s, "error rate")?,
        None => 1e-4,
    };
    let s = ShorEstimate::new(bits, p);
    println!("Shor-{bits} at p = {p:.0e}:");
    println!("  code distance        : {}", s.distance);
    println!("  logical qubits       : {:.0}", s.logical_qubits);
    println!("  T count              : {:.2e}", s.t_count);
    println!("  distillation levels  : {}", s.distillation_levels);
    println!("  T-factories          : {:.0}", s.factories);
    println!("  physical qubits      : {:.2e}", s.physical_qubits);
    println!(
        "  baseline bandwidth   : {:.1} TB/s",
        s.baseline_bandwidth() / 1e12
    );
    Ok(())
}

fn cmd_table2() -> Result<(), String> {
    println!("optimal QECC microcode configurations (paper Table 2):\n");
    println!(
        "{:>8} {:>13} {:>22} {:>9} {:>8} {:>11}",
        "syndrome", "instructions", "configuration", "JJs", "power", "qubits/MCE"
    );
    for r in table2(&TechnologyParams::PROJECTED_F) {
        println!(
            "{:>8} {:>13} {:>22} {:>9} {:>5.1} uW {:>11}",
            r.design.name,
            r.design.microcode_uops,
            r.config.to_string(),
            r.jj_count,
            r.power_w * 1e6,
            r.qubits_serviced
        );
    }
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let [d, p, cycles] = args else {
        return Err("simulate needs: <distance> <error rate> <cycles>".into());
    };
    let d = parse_u64(d, "distance")? as usize;
    let p = parse_f64(p, "error rate")?;
    let cycles = parse_u64(cycles, "cycle count")?;
    let program = workload_with_kernel(&Workload::QLS, 100);
    for mode in [
        DeliveryMode::SoftwareBaseline,
        DeliveryMode::QuestMce,
        DeliveryMode::QuestMceCache,
    ] {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sys = QuestSystem::new(d, p).map_err(|e| e.to_string())?;
        let run = sys.run_memory_workload(cycles, &program, 20, mode, &mut rng);
        println!(
            "{mode:?}: {} bus bytes, logical {} ({} local / {} escalated decodes)",
            run.bus_bytes(),
            if run.logical_ok() { "OK" } else { "CORRUPTED" },
            run.local_decodes,
            run.escalations
        );
    }
    Ok(())
}

fn cmd_run(args: &[String]) -> Result<(), String> {
    let mut shards = 1usize;
    let mut tiles = 8usize;
    let mut distance = 3usize;
    let mut error_rate = 1e-3;
    let mut cycles = 50u64;
    let mut seed = 1u64;
    let mut workload = "memory".to_owned();
    let mut decoder = DecoderChoice::default();
    let mut faults = FaultPlan::none();
    let mut retries = 0u32;
    let mut deadline = None;
    let mut checkpoint_every = 0u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--shards" => shards = parse_u64(value("--shards")?, "shard count")? as usize,
            "--tiles" => tiles = parse_u64(value("--tiles")?, "tile count")? as usize,
            "--distance" => distance = parse_u64(value("--distance")?, "distance")? as usize,
            "--error-rate" => error_rate = parse_f64(value("--error-rate")?, "error rate")?,
            "--cycles" => cycles = parse_u64(value("--cycles")?, "cycle count")?,
            "--seed" => seed = parse_u64(value("--seed")?, "seed")?,
            "--workload" => workload = value("--workload")?.clone(),
            "--decoder" => decoder = parse_decoder(value("--decoder")?)?,
            "--retries" => retries = parse_u64(value("--retries")?, "retry budget")? as u32,
            "--deadline-cycles" => {
                deadline = Some(parse_u64(value("--deadline-cycles")?, "cycle deadline")?);
            }
            "--checkpoint-every" => {
                checkpoint_every = parse_u64(value("--checkpoint-every")?, "checkpoint cadence")?;
            }
            "--fault-drop-rate" => {
                faults.drop_rate = parse_f64(value("--fault-drop-rate")?, "drop rate")?;
            }
            "--fault-corrupt-rate" => {
                faults.corrupt_rate = parse_f64(value("--fault-corrupt-rate")?, "corrupt rate")?;
            }
            "--fault-stall-rate" => {
                faults.stall_rate = parse_f64(value("--fault-stall-rate")?, "stall rate")?;
            }
            "--fault-quarantine" => {
                faults.quarantine_cycles =
                    parse_u64(value("--fault-quarantine")?, "quarantine length")?;
            }
            "--fault-retries" => {
                faults.max_retries = parse_u64(value("--fault-retries")?, "retry budget")? as u32;
            }
            "--fault-kill-decoder" => {
                faults.kill_decode_worker_after_jobs =
                    Some(parse_u64(value("--fault-kill-decoder")?, "job threshold")?);
            }
            "--fault-shard-panic" => {
                let spec = value("--fault-shard-panic")?;
                let (shard, after) = spec
                    .split_once(':')
                    .ok_or("--fault-shard-panic expects <shard>:<cycle>")?;
                faults.shard_panic = Some(quest::runtime::ShardPanicPlan {
                    shard: parse_u64(shard, "shard index")? as usize,
                    after_cycles: parse_u64(after, "panic cycle")?,
                });
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --shards/--tiles/--distance/--error-rate/\
                     --cycles/--seed/--workload/--decoder/--retries/--deadline-cycles/\
                     --checkpoint-every/--fault-drop-rate/--fault-corrupt-rate/\
                     --fault-stall-rate/--fault-quarantine/--fault-retries/\
                     --fault-kill-decoder/--fault-shard-panic)"
                ))
            }
        }
    }
    let mut spec = match workload.as_str() {
        "memory" => WorkloadSpec::memory(distance, tiles, shards, error_rate, seed, cycles),
        "bell" => WorkloadSpec::bell_pairs(distance, tiles, shards, error_rate, seed, cycles)
            .map_err(|e| e.to_string())?,
        other => return Err(format!("unknown workload `{other}` (memory | bell)")),
    };
    spec.faults = faults;
    spec.decoder = decoder;
    spec.validate().map_err(|e| e.to_string())?;
    println!(
        "{workload} workload: {tiles} tiles at d={distance}, p={error_rate:.0e}, \
         {cycles} cycles, seed {seed}, {shards} shard(s), {decoder} decoder\n"
    );
    let report = supervised_run(spec, retries, deadline, checkpoint_every)?;
    println!("{}", report.stats);
    if !report.recovery.is_quiet() {
        println!("\nfault recovery:");
        for line in report.recovery.to_string().lines() {
            println!("  {line}");
        }
    }
    println!("\nbus bytes: {}", report.bus_bytes());
    let cost = report.report.decode_cost;
    println!(
        "decode cost [{decoder}]: {} decodes ({} fallback), {} cycles \
         (max {} per decode), {} JJs",
        cost.decodes, cost.fallback_decodes, cost.cycles, cost.max_decode_cycles, cost.jj_count
    );
    let ones = report.outcomes.iter().filter(|&&(_, v)| v).count();
    println!(
        "outcomes: {} tiles read out, {} ones ({} zeros)",
        report.outcomes.len(),
        ones,
        report.outcomes.len() - ones
    );
    Ok(())
}

/// Local supervisor for `run`: the same retry/deadline/checkpoint loop
/// the job server's worker applies, inline for a single workload. With
/// the default knobs (no retries, no deadline, forced-only checkpoints)
/// this is byte-for-byte a plain `Runtime::run`.
fn supervised_run(
    mut spec: WorkloadSpec,
    retries: u32,
    deadline: Option<u64>,
    checkpoint_every: u64,
) -> Result<RuntimeReport, String> {
    let runtime = Runtime::new();
    let sink = CheckpointSink::every(checkpoint_every);
    let cancel = CancelToken::new();
    let max_attempts = retries.saturating_add(1);
    let mut attempt = 1u32;
    let mut snapshot: Option<RunSnapshot> = None;
    let mut resumed_cycles = 0u64;
    let mut restarts = 0u64;
    loop {
        let deadline_hit = AtomicBool::new(false);
        let progress = |p: RunProgress| {
            if let Some(limit) = deadline {
                if p.cycles_done >= limit && !deadline_hit.swap(true, Ordering::AcqRel) {
                    cancel.cancel();
                }
            }
        };
        let control = RunControl::new()
            .with_cancel(&cancel)
            .with_progress(&progress)
            .with_checkpoints(&sink);
        let result = match snapshot.as_ref() {
            Some(snap) => runtime.resume(snap, &control),
            None => runtime.run_controlled(&spec, &control),
        };
        match result {
            Ok(report) => {
                if attempt > 1 {
                    println!(
                        "supervision: {attempt} attempt(s), {resumed_cycles} cycle(s) resumed \
                         from checkpoints, {restarts} restart(s) from scratch\n"
                    );
                }
                return Ok(report);
            }
            Err(RuntimeError::Cancelled { cycles_done })
                if deadline_hit.load(Ordering::Acquire) =>
            {
                return Err(format!(
                    "deadline exceeded: cycle budget {} ran out after {cycles_done} cycles \
                     (attempt {attempt})",
                    deadline.unwrap_or(0)
                ));
            }
            Err(error) if retryable(&error) && attempt < max_attempts => {
                let mut snap = sink.take().or(snapshot.take());
                disarm(&error, &mut spec, snap.as_mut());
                match snap.as_ref() {
                    Some(s) => resumed_cycles += s.cycles_done(),
                    None => restarts += 1,
                }
                eprintln!("attempt {attempt} failed ({error}); retrying");
                snapshot = snap;
                attempt += 1;
            }
            Err(e) => return Err(e.to_string()),
        }
    }
}

/// Batch driver for the job server: `--jobs N` memory workloads spread
/// round-robin over `--tenants T`, run on `--workers W`, with per-job
/// seeds `--seed + job index`. `--cancel-every K` cancels every Kth job
/// right after submission to exercise the cancellation path;
/// `--retries`/`--deadline-cycles`/`--checkpoint-every` attach a
/// [`RetryPolicy`] to every job. Submission blocks when the queue is
/// full (the server's blocking `submit` parks instead of busy-looping).
/// Exits nonzero if any job ends in an unexpected state.
fn cmd_submit(args: &[String]) -> Result<(), String> {
    let mut workers = 2usize;
    let mut jobs = 4u64;
    let mut tenants = 1u32;
    let mut tiles = 4usize;
    let mut distance = 3usize;
    let mut error_rate = 1e-3;
    let mut cycles = 30u64;
    let mut seed = 1u64;
    let mut queue_depth = 64usize;
    let mut cancel_every = 0u64;
    let mut max_shots = u64::MAX;
    let mut decoder = DecoderChoice::default();
    let mut retries = 0u32;
    let mut deadline = None;
    let mut checkpoint_every = 0u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--workers" => workers = parse_u64(value("--workers")?, "worker count")? as usize,
            "--jobs" => jobs = parse_u64(value("--jobs")?, "job count")?,
            "--tenants" => tenants = parse_u64(value("--tenants")?, "tenant count")? as u32,
            "--tiles" => tiles = parse_u64(value("--tiles")?, "tile count")? as usize,
            "--distance" => distance = parse_u64(value("--distance")?, "distance")? as usize,
            "--error-rate" => error_rate = parse_f64(value("--error-rate")?, "error rate")?,
            "--cycles" => cycles = parse_u64(value("--cycles")?, "cycle count")?,
            "--seed" => seed = parse_u64(value("--seed")?, "seed")?,
            "--queue-depth" => {
                queue_depth = parse_u64(value("--queue-depth")?, "queue depth")? as usize;
            }
            "--cancel-every" => {
                cancel_every = parse_u64(value("--cancel-every")?, "cancel stride")?;
            }
            "--max-shots" => max_shots = parse_u64(value("--max-shots")?, "shot quota")?,
            "--decoder" => decoder = parse_decoder(value("--decoder")?)?,
            "--retries" => retries = parse_u64(value("--retries")?, "retry budget")? as u32,
            "--deadline-cycles" => {
                deadline = Some(parse_u64(value("--deadline-cycles")?, "cycle deadline")?);
            }
            "--checkpoint-every" => {
                checkpoint_every = parse_u64(value("--checkpoint-every")?, "checkpoint cadence")?;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --workers/--jobs/--tenants/--tiles/\
                     --distance/--error-rate/--cycles/--seed/--queue-depth/--cancel-every/\
                     --max-shots/--decoder/--retries/--deadline-cycles/--checkpoint-every)"
                ))
            }
        }
    }
    let tenants = tenants.max(1);
    let mut policy = RetryPolicy::default()
        .with_max_attempts(retries.saturating_add(1))
        .with_checkpoint_every(checkpoint_every);
    if let Some(limit) = deadline {
        policy = policy.with_deadline_cycles(limit);
    }
    let quota = TenantQuota {
        max_total_shots: max_shots,
        ..TenantQuota::UNLIMITED
    };
    let server = Server::start(
        ServerConfig::default()
            .with_workers(workers)
            .with_queue_depth(queue_depth)
            .with_default_quota(quota),
    );
    println!(
        "submitting {jobs} jobs across {tenants} tenant(s) to {workers} worker(s) \
         ({tiles} tiles at d={distance}, {cycles} cycles each)\n"
    );
    let mut handles: Vec<(u64, Option<JobHandle>)> = Vec::new();
    for i in 0..jobs {
        let tenant = TenantId(i as u32 % tenants);
        let mut spec = WorkloadSpec::memory(distance, tiles, 1, error_rate, seed + i, cycles);
        spec.decoder = decoder;
        match server.submit_with_policy(tenant, spec, policy) {
            Ok(handle) => {
                if cancel_every > 0 && i % cancel_every == 0 {
                    handle.cancel();
                }
                handles.push((i, Some(handle)));
            }
            Err(e) => {
                println!("job {i} ({tenant}): rejected — {e}");
                handles.push((i, None));
            }
        }
    }
    let mut unexpected = 0u64;
    for (i, handle) in handles {
        let Some(handle) = handle else {
            if cancel_every == 0 && max_shots == u64::MAX {
                unexpected += 1;
            }
            continue;
        };
        let tenant = handle.tenant();
        let expect_cancel = cancel_every > 0 && i % cancel_every == 0;
        match handle.wait() {
            JobOutcome::Done(report) => {
                println!(
                    "job {i} ({tenant}): done — {} outcomes, logical {}",
                    report.outcomes.len(),
                    if report.logical_ok() {
                        "OK"
                    } else {
                        "CORRUPTED"
                    },
                );
            }
            JobOutcome::Cancelled => {
                println!("job {i} ({tenant}): cancelled");
                if !expect_cancel {
                    unexpected += 1;
                }
            }
            JobOutcome::DeadlineExceeded { cycles_done } => {
                println!("job {i} ({tenant}): deadline exceeded after {cycles_done} cycles");
                if deadline.is_none() {
                    unexpected += 1;
                }
            }
            JobOutcome::Failed(e) => {
                println!("job {i} ({tenant}): failed — {e}");
                unexpected += 1;
            }
            JobOutcome::Lost => {
                println!("job {i} ({tenant}): lost");
                unexpected += 1;
            }
        }
    }
    let ledger = server.shutdown();
    println!("\n{ledger}");
    if unexpected > 0 {
        return Err(format!("{unexpected} job(s) ended in an unexpected state"));
    }
    Ok(())
}

/// Interactive job server: reads line commands from stdin until EOF or
/// `drain`, then drains the pool and prints the final ledger.
///
/// Commands:
///
/// ```text
/// submit <tenant> <cycles> [seed]            — memory workload (d=3, 4 tiles)
/// cancel <job>                               — request cancellation
/// status                                     — queue depth + every job's state
/// quota <tenant> <queued> <cycles> <shots>   — set a tenant quota
/// drain                                      — stop intake, finish, report
/// ```
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut workers = 2usize;
    let mut queue_depth = 64usize;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--workers" => workers = parse_u64(value("--workers")?, "worker count")? as usize,
            "--queue-depth" => {
                queue_depth = parse_u64(value("--queue-depth")?, "queue depth")? as usize;
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --workers/--queue-depth)"
                ))
            }
        }
    }
    let server = Server::start(
        ServerConfig::default()
            .with_workers(workers)
            .with_queue_depth(queue_depth),
    );
    println!("serving on {workers} worker(s); commands: submit/cancel/status/quota/drain");
    let mut handles: BTreeMap<u64, JobHandle> = BTreeMap::new();
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| e.to_string())?;
        let words: Vec<&str> = line.split_whitespace().collect();
        match words.as_slice() {
            [] => {}
            ["submit", tenant, cycles, rest @ ..] => {
                let tenant = TenantId(parse_u64(tenant, "tenant")? as u32);
                let cycles = parse_u64(cycles, "cycle count")?;
                let seed = match rest {
                    [] => 1,
                    [s, ..] => parse_u64(s, "seed")?,
                };
                let spec = WorkloadSpec::memory(3, 4, 1, 1e-3, seed, cycles);
                match server.submit(tenant, spec) {
                    Ok(handle) => {
                        println!("{} queued for {tenant}", handle.id());
                        handles.insert(handle.id().0, handle);
                    }
                    Err(e) => println!("rejected: {e}"),
                }
            }
            ["cancel", job] => {
                let id = parse_u64(job, "job id")?;
                match handles.get(&id) {
                    Some(handle) => {
                        handle.cancel();
                        println!("job-{id} cancellation requested");
                    }
                    None => println!("no such job: {id}"),
                }
            }
            ["status"] => {
                println!("{} job(s) queued", server.queued_jobs());
                for (id, handle) in &handles {
                    println!("  job-{id} ({}): {:?}", handle.tenant(), handle.state());
                }
            }
            ["quota", tenant, queued, cycles, shots] => {
                let tenant = TenantId(parse_u64(tenant, "tenant")? as u32);
                server.set_quota(
                    tenant,
                    TenantQuota {
                        max_queued_jobs: parse_u64(queued, "queued-job quota")?,
                        max_inflight_shard_cycles: parse_u64(cycles, "shard-cycle quota")?,
                        max_total_shots: parse_u64(shots, "shot quota")?,
                    },
                );
                println!("quota set for {tenant}");
            }
            ["drain"] => break,
            other => println!("unknown command: {}", other.join(" ")),
        }
    }
    let ledger = server.shutdown();
    for (id, handle) in handles {
        let outcome = match handle.wait() {
            JobOutcome::Done(report) => format!(
                "done ({} outcomes, logical {})",
                report.outcomes.len(),
                if report.logical_ok() {
                    "OK"
                } else {
                    "CORRUPTED"
                },
            ),
            JobOutcome::Cancelled => "cancelled".to_owned(),
            JobOutcome::DeadlineExceeded { cycles_done } => {
                format!("deadline exceeded after {cycles_done} cycles")
            }
            JobOutcome::Failed(e) => format!("failed: {e}"),
            JobOutcome::Lost => "lost".to_owned(),
        };
        println!("job-{id}: {outcome}");
    }
    println!("\n{ledger}");
    Ok(())
}

/// Chaos-soak harness: seeded fault storms against a live server with
/// every crash-safety invariant checked (see `quest_serve::chaos`).
/// Under `QUEST_FAULT_HEAVY` the default campaign widens to 10 seeds.
/// Exits nonzero on any invariant violation.
fn cmd_chaos(args: &[String]) -> Result<(), String> {
    let heavy = std::env::var_os("QUEST_FAULT_HEAVY").is_some_and(|v| v != "0" && !v.is_empty());
    let mut config = if heavy {
        ChaosConfig::default().with_seeds(10).with_jobs_per_seed(10)
    } else {
        ChaosConfig::default()
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |what: &str| -> Result<&String, String> {
            it.next().ok_or(format!("{what} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => config = config.with_seeds(parse_u64(value("--seeds")?, "seed count")?),
            "--jobs" => {
                config = config
                    .with_jobs_per_seed(parse_u64(value("--jobs")?, "jobs per seed")? as usize);
            }
            "--workers" => {
                config =
                    config.with_workers(parse_u64(value("--workers")?, "worker count")? as usize);
            }
            "--first-seed" => {
                config = config.with_first_seed(parse_u64(value("--first-seed")?, "first seed")?);
            }
            "--cancel-percent" => {
                config = config
                    .with_cancel_percent(parse_u64(value("--cancel-percent")?, "cancel percent")?);
            }
            "--timeout-secs" => {
                config = config.with_timeout(std::time::Duration::from_secs(parse_u64(
                    value("--timeout-secs")?,
                    "seed timeout",
                )?));
            }
            other => {
                return Err(format!(
                    "unknown flag `{other}` (expected --seeds/--jobs/--workers/--first-seed/\
                     --cancel-percent/--timeout-secs)"
                ))
            }
        }
    }
    println!(
        "chaos soak: {} seed(s) from {:#x}, {} job(s) per seed, {} worker(s)\n",
        config.seeds, config.first_seed, config.jobs_per_seed, config.workers
    );
    // Injected worker panics are the point of a chaos storm; keep the
    // default hook's multi-line backtraces out of the report. Anything
    // genuinely wrong still surfaces as an invariant violation below.
    std::panic::set_hook(Box::new(|info| {
        let payload = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| (*s).to_owned())
            .or_else(|| info.payload().downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_owned());
        eprintln!("worker panic: {payload}");
    }));
    let report = run_chaos(&config);
    let _ = std::panic::take_hook();
    println!("{report}");
    if report.ok() {
        Ok(())
    } else {
        Err(format!(
            "{} invariant violation(s)",
            report.violations.len()
        ))
    }
}

fn cmd_asm(args: &[String]) -> Result<(), String> {
    let path = args.first().ok_or("asm needs a file path (or `-`)")?;
    let source = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| e.to_string())?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?
    };
    let program = quest::isa::asm::parse(&source).map_err(|e| e.to_string())?;
    println!(
        "assembled {} instructions ({} bytes):",
        program.len(),
        program.encoded_bytes()
    );
    println!(
        "  algorithmic  : {}",
        program.count_class(quest::isa::InstrClass::Algorithmic)
    );
    println!(
        "  distillation : {}",
        program.count_class(quest::isa::InstrClass::Distillation)
    );
    println!(
        "  sync/cache   : {}",
        program.count_class(quest::isa::InstrClass::Sync)
            + program.count_class(quest::isa::InstrClass::CacheControl)
    );
    println!("  T gates      : {}", program.t_count());
    Ok(())
}
