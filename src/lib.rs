//! QuEST reproduction — umbrella crate.
//!
//! Re-exports the full stack built for the reproduction of *Taming the
//! Instruction Bandwidth of Quantum Computers via Hardware-Managed Error
//! Correction* (Tannu et al., MICRO-50 2017):
//!
//! * [`stabilizer`] — CHP tableau + state-vector simulators;
//! * [`surface`] — surface-code lattice, syndrome circuits, decoders;
//! * [`isa`] — physical µop and logical instruction sets;
//! * [`arch`] — the QuEST control processor (MCEs, master controller,
//!   microcode models, end-to-end system simulation);
//! * [`estimate`] — the QuRE-style resource/bandwidth estimator;
//! * [`runtime`] — the concurrent, sharded multi-tile simulation
//!   runtime (one worker thread per MCE shard, a shared global-decode
//!   pool, packet-shaped channel messages);
//! * [`serve`] — the multi-tenant job server over the runtime
//!   (admission control, bounded queue, worker pool, streaming job
//!   events, server ledger).
//!
//! # Quickstart
//!
//! ```
//! use quest::arch::{DeliveryMode, QuestSystem};
//! use quest::isa::LogicalProgram;
//! use quest::stabilizer::{SeedableRng, StdRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let mut system = QuestSystem::new(3, 1e-3)?;
//! let run = system.run_memory_workload(
//!     50,
//!     &LogicalProgram::new(),
//!     0,
//!     DeliveryMode::QuestMce,
//!     &mut rng,
//! );
//! assert!(run.logical_ok());
//! # Ok::<(), quest::arch::BuildError>(())
//! ```

#![forbid(unsafe_code)]

pub use quest_core as arch;
pub use quest_estimate as estimate;
pub use quest_isa as isa;
pub use quest_runtime as runtime;
pub use quest_serve as serve;
pub use quest_stabilizer as stabilizer;
pub use quest_surface as surface;
